//! The generalized-cover space `Gq` — §5.2.
//!
//! A generalized cover `{f1‖g1 … fm‖gm}` is in `Gq` iff `{g1 … gm}` is a
//! safe cover (an element of `Lq`) and each `fi` is a connected atom set
//! containing `gi`, with no `fi` included in another. Enlarging `f` with
//! reducer atoms emulates semijoin reducers (Theorem 3 keeps the
//! reformulation equivalent).
//!
//! `|Gq|` explodes combinatorially (upper bound `Bn · n · 2^{n-1}`; the
//! paper stopped counting A6 at 20 003 covers), so enumeration takes a hard
//! cap and reports whether it was hit.

use crate::cover::{mask_len, AtomMask, Cover, Fragment};
use crate::lattice::enumerate_safe_covers;
use crate::safety::QueryAnalysis;

/// Result of (possibly capped) `Gq` enumeration.
#[derive(Debug, Clone)]
pub struct GenSpace {
    pub covers: Vec<Cover>,
    /// True if the cap stopped enumeration (the true size is larger).
    pub truncated: bool,
}

/// Enumerate generalized covers. `cap` bounds the output size (0 =
/// unlimited — beware, exponential).
pub fn enumerate_generalized_covers(analysis: &QueryAnalysis, cap: usize) -> GenSpace {
    let mut out: Vec<Cover> = Vec::new();
    let mut truncated = false;
    let safe = enumerate_safe_covers(analysis, 0);
    'outer: for base in &safe {
        // For each fragment g, compute all connected supersets f ⊇ g.
        let growths: Vec<Vec<AtomMask>> = base
            .fragments()
            .iter()
            .map(|fr| connected_supersets(analysis, fr.g))
            .collect();
        // Cartesian product of per-fragment growth choices.
        let mut choice = vec![0usize; growths.len()];
        loop {
            let fragments: Vec<Fragment> = base
                .fragments()
                .iter()
                .zip(&choice)
                .zip(&growths)
                .map(|((fr, &c), g)| Fragment::generalized(g[c], fr.g))
                .collect();
            let cover = Cover::new(fragments);
            if cover.no_inclusion() {
                out.push(cover);
                if cap > 0 && out.len() >= cap {
                    truncated = true;
                    break 'outer;
                }
            }
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == choice.len() {
                    break;
                }
                choice[i] += 1;
                if choice[i] < growths[i].len() {
                    break;
                }
                choice[i] = 0;
                i += 1;
            }
            if i == choice.len() {
                break;
            }
        }
    }
    GenSpace {
        covers: out,
        truncated,
    }
}

/// All connected atom sets `f` with `g ⊆ f` (including `g` itself when
/// connected; if `g` is disconnected, only supersets that connect it are
/// produced — plus `g` itself, which is always admitted as the simple
/// fragment).
pub fn connected_supersets(analysis: &QueryAnalysis, g: AtomMask) -> Vec<AtomMask> {
    let mut seen: std::collections::HashSet<AtomMask> = std::collections::HashSet::new();
    let mut stack = vec![g];
    seen.insert(g);
    while let Some(cur) = stack.pop() {
        let candidates = analysis.neighbors(cur);
        for i in crate::cover::mask_indices(candidates) {
            let next = cur | (1 << i);
            if seen.insert(next) {
                stack.push(next);
            }
        }
    }
    let mut v: Vec<AtomMask> = seen
        .into_iter()
        .filter(|&m| m == g || analysis.is_connected(m))
        .collect();
    // Deterministic order: by size then value (g first).
    v.sort_unstable_by_key(|&m| (mask_len(m), m));
    v
}

/// Count `|Gq|` up to `cap`.
pub fn genspace_size(analysis: &QueryAnalysis, cap: usize) -> (usize, bool) {
    let gs = enumerate_generalized_covers(analysis, cap);
    (gs.covers.len(), gs.truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safety::is_safe;
    use obda_dllite::{example7_tbox, Dependencies, TBox, Vocabulary};
    use obda_query::{Atom, Term, VarId, CQ};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn example7_analysis() -> QueryAnalysis {
        let (voc, tbox) = example7_tbox();
        let deps = Dependencies::compute(&voc, &tbox);
        let phd = voc.find_concept("PhDStudent").unwrap();
        let works = voc.find_role("worksWith").unwrap();
        let sup = voc.find_role("supervisedBy").unwrap();
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(phd, v(0)),
                Atom::Role(works, v(0), v(1)),
                Atom::Role(sup, v(2), v(1)),
            ],
        );
        QueryAnalysis::new(&q, &deps)
    }

    #[test]
    fn gq_contains_lq() {
        let analysis = example7_analysis();
        let gq = enumerate_generalized_covers(&analysis, 0);
        assert!(!gq.truncated);
        let lq = enumerate_safe_covers(&analysis, 0);
        for c in &lq {
            assert!(gq.covers.contains(c), "Lq ⊆ Gq: missing {c:?}");
        }
        assert!(gq.covers.len() > lq.len(), "Gq strictly larger here");
    }

    #[test]
    fn example11_cover_is_enumerated() {
        // C3 = {f1‖f1, f2‖f0} with f0 = {0}, f1 = {1,2}, f2 = {0,1}.
        let analysis = example7_analysis();
        let gq = enumerate_generalized_covers(&analysis, 0);
        let c3 = Cover::new(vec![
            Fragment::generalized(0b110, 0b110),
            Fragment::generalized(0b011, 0b001),
        ]);
        assert!(gq.covers.contains(&c3), "Example 11's generalized cover");
    }

    #[test]
    fn g_parts_of_generalized_covers_are_safe() {
        let analysis = example7_analysis();
        for c in enumerate_generalized_covers(&analysis, 0).covers {
            let base = Cover::new(
                c.fragments()
                    .iter()
                    .map(|fr| Fragment::simple(fr.g))
                    .collect(),
            );
            assert!(is_safe(&analysis, &base), "g-part must be safe: {c:?}");
            assert!(c.no_inclusion());
        }
    }

    #[test]
    fn enlarged_fragments_are_connected() {
        let analysis = example7_analysis();
        for c in enumerate_generalized_covers(&analysis, 0).covers {
            for fr in c.fragments() {
                assert!(
                    analysis.is_connected(fr.f) || fr.f == fr.g,
                    "enlarged fragment must be connected"
                );
            }
        }
    }

    #[test]
    fn cap_truncates() {
        let mut voc = Vocabulary::new();
        for i in 0..6 {
            voc.role(&format!("r{i}"));
        }
        let deps = Dependencies::compute(&voc, &TBox::new());
        let atoms: Vec<Atom> = (0..6)
            .map(|i| Atom::Role(obda_dllite::RoleId(i as u32), v(0), v(i as u32 + 1)))
            .collect();
        let q = CQ::with_var_head(vec![VarId(0)], atoms);
        let analysis = QueryAnalysis::new(&q, &deps);
        let (n, truncated) = genspace_size(&analysis, 1000);
        assert_eq!(n, 1000);
        assert!(truncated, "6-atom star exceeds 1000 generalized covers");
    }

    #[test]
    fn connected_supersets_of_singleton() {
        let analysis = example7_analysis();
        // Supersets of {PhDStudent(x)}: {0}, {0,1}, {0,1,2} (atom 2 is not
        // adjacent to atom 0 directly but reachable through 1).
        let sup = connected_supersets(&analysis, 0b001);
        assert_eq!(sup, vec![0b001, 0b011, 0b111]);
    }

    #[test]
    fn gq_growth_is_superlinear_in_atoms() {
        // Star queries with independent predicates: |Gq| explodes (cf.
        // Table 6's 4 / 67 / 5674 progression).
        let mut voc = Vocabulary::new();
        for i in 0..5 {
            voc.role(&format!("r{i}"));
        }
        let deps = Dependencies::compute(&voc, &TBox::new());
        let mut sizes = Vec::new();
        for n in 2..=4usize {
            let atoms: Vec<Atom> = (0..n)
                .map(|i| Atom::Role(obda_dllite::RoleId(i as u32), v(0), v(i as u32 + 1)))
                .collect();
            let q = CQ::with_var_head(vec![VarId(0)], atoms);
            let analysis = QueryAnalysis::new(&q, &deps);
            let (size, truncated) = genspace_size(&analysis, 100_000);
            assert!(!truncated);
            sizes.push(size);
        }
        assert!(sizes[1] > 4 * sizes[0], "superlinear growth: {sizes:?}");
        assert!(sizes[2] > 4 * sizes[1], "superlinear growth: {sizes:?}");
    }
}
