//! Memoized fragment reformulation.
//!
//! EDL and GDL evaluate many covers sharing fragments; reformulating a
//! fragment (PerfectRef + minimization) depends only on its atom set and
//! its exported head, so results are cached across candidate covers. This
//! is the practical trick that keeps cover search cheap relative to cost
//! estimation (§6.4).

use std::collections::HashMap;

use obda_dllite::TBox;
use obda_query::{minimize_ucq, Term, CQ, JUCQ, UCQ};
use obda_reform::{fragment_query, perfect_ref_pruned};

use crate::cover::{AtomMask, Cover};

/// Cache of fragment-UCQ reformulations for one (query, TBox) pair.
pub struct ReformCache<'a> {
    q: &'a CQ,
    tbox: &'a TBox,
    /// Minimize each fragment UCQ before assembly (what a production
    /// rewriter like RAPID emits).
    pub minimize: bool,
    cache: HashMap<(AtomMask, Vec<Term>), UCQ>,
    hits: usize,
    misses: usize,
}

impl<'a> ReformCache<'a> {
    pub fn new(q: &'a CQ, tbox: &'a TBox, minimize: bool) -> Self {
        ReformCache {
            q,
            tbox,
            minimize,
            cache: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Build the JUCQ reformulation of `cover` (Definition 3 / §5.2),
    /// reusing cached fragment reformulations.
    pub fn jucq_for(&mut self, cover: &Cover) -> JUCQ {
        let specs = cover.to_specs();
        let components: Vec<UCQ> = cover
            .fragments()
            .iter()
            .zip(&specs)
            .map(|(fr, spec)| {
                let fq = fragment_query(self.q, spec, &specs);
                let key = (fr.f, fq.head().to_vec());
                if let Some(u) = self.cache.get(&key) {
                    self.hits += 1;
                    return u.clone();
                }
                self.misses += 1;
                let mut ucq = perfect_ref_pruned(&fq, self.tbox);
                if self.minimize {
                    ucq = minimize_ucq(&ucq);
                }
                self.cache.insert(key, ucq.clone());
                ucq
            })
            .collect();
        JUCQ::new(self.q.head().to_vec(), components)
    }

    pub fn hits(&self) -> usize {
        self.hits
    }

    pub fn misses(&self) -> usize {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::Fragment;
    use obda_dllite::example7_tbox;
    use obda_query::{Atom, VarId};

    fn setup() -> (CQ, obda_dllite::TBox) {
        let (voc, tbox) = example7_tbox();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let works = voc.find_role("worksWith").unwrap();
        let sup = voc.find_role("supervisedBy").unwrap();
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(phd, Term::Var(VarId(0))),
                Atom::Role(works, Term::Var(VarId(0)), Term::Var(VarId(1))),
                Atom::Role(sup, Term::Var(VarId(2)), Term::Var(VarId(1))),
            ],
        );
        (q, tbox)
    }

    #[test]
    fn repeated_covers_hit_the_cache() {
        let (q, tbox) = setup();
        let mut cache = ReformCache::new(&q, &tbox, true);
        let cover = Cover::new(vec![Fragment::simple(0b001), Fragment::simple(0b110)]);
        let j1 = cache.jucq_for(&cover);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
        let j2 = cache.jucq_for(&cover);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 2);
        assert_eq!(j1, j2);
    }

    #[test]
    fn shared_fragments_are_reused_across_covers() {
        let (q, tbox) = setup();
        let mut cache = ReformCache::new(&q, &tbox, true);
        let c1 = Cover::new(vec![Fragment::simple(0b001), Fragment::simple(0b110)]);
        let c2 = Cover::new(vec![
            Fragment::simple(0b001),
            Fragment::generalized(0b111, 0b110),
        ]);
        cache.jucq_for(&c1);
        let misses_before = cache.misses();
        cache.jucq_for(&c2);
        // Fragment {0} exports the same head in both covers — cached.
        assert_eq!(cache.misses(), misses_before + 1);
        assert!(cache.hits() >= 1);
    }

    /// The serving path compiles reformulations on worker threads; a
    /// cache mid-build must be movable across them (compile-time check).
    #[test]
    fn reform_cache_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ReformCache<'_>>();
    }

    #[test]
    fn minimized_components_are_no_larger() {
        let (q, tbox) = setup();
        let cover = Cover::trivial(q.num_atoms());
        let raw = ReformCache::new(&q, &tbox, false).jucq_for(&cover);
        let min = ReformCache::new(&q, &tbox, true).jucq_for(&cover);
        assert!(min.total_cqs() <= raw.total_cqs());
    }
}
