//! # obda-core
//!
//! The paper's primary contribution: **cost-driven cover-based query
//! answering** for FOL-reducible OBDA settings, instantiated to DL-LiteR.
//!
//! * [`Cover`] / [`Fragment`] — query covers (Definition 1) and
//!   generalized covers (§5.2) over atom bitmasks;
//! * [`QueryAnalysis`], [`root_cover`], [`is_safe`] — the safety machinery
//!   of Definitions 5–6 built on predicate dependencies (Definition 4);
//! * [`enumerate_safe_covers`] — the lattice `Lq` (Theorem 2, §5.1);
//! * [`enumerate_generalized_covers`] — the space `Gq` (§5.2);
//! * [`gdl()`] / [`edl()`] — the greedy and exhaustive cost-driven searches of
//!   §5.3 (Algorithm 1), including the §6.4 time-limited variant;
//! * [`CostEstimator`] — the cost abstraction `ε` (engine-backed
//!   implementations live in `obda-rdbms`);
//! * [`choose_reformulation`] — the strategy surface benchmarked in §6.

pub mod answer;
pub mod bell;
pub mod cost;
pub mod cover;
pub mod edl;
pub mod gdl;
pub mod genspace;
pub mod lattice;
pub mod reform_cache;
pub mod safety;

pub use answer::{
    choose_reformulation, choose_reformulation_constrained, Chosen, SearchStats, Strategy,
};
pub use bell::{bell_number, blocks_of, Partitions};
pub use cost::{CostEstimator, InstrumentedEstimator, StructuralEstimator};
pub use cover::{full_mask, mask_indices, mask_len, AtomMask, Cover, Fragment};
pub use edl::edl;
pub use gdl::{gdl, moves_from, GdlConfig, SearchOutcome};
pub use genspace::{connected_supersets, enumerate_generalized_covers, genspace_size, GenSpace};
pub use lattice::{enumerate_safe_covers, lattice_size, precedes};
pub use obda_reform::{arm_provably_empty, prune_fol, prune_ucq, PruneStats, PrunedUcq};
pub use reform_cache::ReformCache;
pub use safety::{is_safe, root_cover, QueryAnalysis};
