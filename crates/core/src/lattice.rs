//! The safe-cover lattice `Lq` — §5.1.
//!
//! Theorem 2: every fragment of a safe cover is a union of root-cover
//! fragments, so `Lq` is exactly the set of partitions of the root
//! fragments (bounded by the Bell number of the root-fragment count),
//! additionally filtered for Definition 1 (iii) join-connectivity of each
//! block. Root fragments themselves are always admitted as blocks even if
//! internally disconnected (they are forced by safety); unions of root
//! fragments must be connected at the fragment level.

use crate::bell::{blocks_of, Partitions};
use crate::cover::{AtomMask, Cover, Fragment};
use crate::safety::{root_cover, QueryAnalysis};

/// Enumerate the safe-cover lattice of a query. Returns all safe covers,
/// from the root cover (finest) down to the single-fragment cover
/// (coarsest). `limit` caps the enumeration (0 = unlimited).
pub fn enumerate_safe_covers(analysis: &QueryAnalysis, limit: usize) -> Vec<Cover> {
    let croot = root_cover(analysis);
    let units: Vec<AtomMask> = croot.fragments().iter().map(|f| f.f).collect();
    let k = units.len();
    let mut out = Vec::new();
    for assignment in Partitions::new(k) {
        let blocks = blocks_of(&assignment);
        let mut fragments = Vec::with_capacity(blocks.len());
        let mut ok = true;
        for block in &blocks {
            let mask: AtomMask = block.iter().map(|&u| units[u]).fold(0, |a, b| a | b);
            // Def 1 (iii): blocks made of several root fragments must be
            // connected; single root fragments are always admitted.
            if block.len() > 1 && !unit_connected(analysis, &units, block) {
                ok = false;
                break;
            }
            fragments.push(Fragment::simple(mask));
        }
        if ok {
            out.push(Cover::new(fragments));
            if limit > 0 && out.len() >= limit {
                break;
            }
        }
    }
    out
}

/// Size of `Lq` (with the connectivity filter), up to `limit` (0 =
/// unlimited).
pub fn lattice_size(analysis: &QueryAnalysis, limit: usize) -> usize {
    enumerate_safe_covers(analysis, limit).len()
}

/// Is the union of the given root-fragment units connected, treating each
/// unit as a super-node (units are internally inseparable regardless of
/// their own connectivity)?
fn unit_connected(analysis: &QueryAnalysis, units: &[AtomMask], block: &[usize]) -> bool {
    let m = block.len();
    if m <= 1 {
        return true;
    }
    let mut reached = vec![false; m];
    reached[0] = true;
    let mut frontier = vec![0usize];
    while let Some(i) = frontier.pop() {
        let ui = units[block[i]];
        let neigh = analysis.neighbors(ui) | ui;
        for (j, r) in reached.iter_mut().enumerate() {
            if !*r && units[block[j]] & neigh != 0 {
                *r = true;
                frontier.push(j);
            }
        }
    }
    reached.into_iter().all(|r| r)
}

/// The precedence relation of the lattice: `c1 ≺ c2` iff each fragment of
/// `c2` is a union of fragments of `c1` (c1 is finer).
pub fn precedes(c1: &Cover, c2: &Cover) -> bool {
    c2.fragments().iter().all(|f2| {
        // f2 must be exactly the union of the c1-fragments it contains.
        let mut union: AtomMask = 0;
        for f1 in c1.fragments() {
            if f1.f & f2.f == f1.f {
                union |= f1.f;
            } else if f1.f & f2.f != 0 {
                return false; // partial overlap — not a union of c1 blocks
            }
        }
        union == f2.f
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bell::bell_number;
    use obda_dllite::{example7_tbox, Dependencies, TBox, Vocabulary};
    use obda_query::{Atom, Term, VarId, CQ};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn example7_analysis() -> QueryAnalysis {
        let (voc, tbox) = example7_tbox();
        let deps = Dependencies::compute(&voc, &tbox);
        let phd = voc.find_concept("PhDStudent").unwrap();
        let works = voc.find_role("worksWith").unwrap();
        let sup = voc.find_role("supervisedBy").unwrap();
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(phd, v(0)),
                Atom::Role(works, v(0), v(1)),
                Atom::Role(sup, v(2), v(1)),
            ],
        );
        QueryAnalysis::new(&q, &deps)
    }

    #[test]
    fn example7_lattice_has_two_covers() {
        // Croot has 2 fragments → Bell(2) = 2 partitions, both connected:
        // Croot itself and the single-fragment cover.
        let analysis = example7_analysis();
        let covers = enumerate_safe_covers(&analysis, 0);
        assert_eq!(covers.len(), 2);
        assert!(covers.iter().any(|c| c.num_fragments() == 2));
        assert!(covers.iter().any(|c| c.num_fragments() == 1));
    }

    #[test]
    fn all_enumerated_covers_are_safe() {
        let analysis = example7_analysis();
        for c in enumerate_safe_covers(&analysis, 0) {
            assert!(crate::safety::is_safe(&analysis, &c), "{c:?}");
        }
    }

    /// With no dependencies between star-query atoms, |Lq| = Bell(n)
    /// (§5.1: "the bound occurs when there is no dependency between the
    /// atom predicates"). Star queries keep every block connected.
    #[test]
    fn independent_star_query_reaches_bell_bound() {
        let mut voc = Vocabulary::new();
        for i in 0..5 {
            voc.role(&format!("r{i}"));
        }
        let tbox = TBox::new();
        let deps = Dependencies::compute(&voc, &tbox);
        for n in 2..=5usize {
            let atoms: Vec<Atom> = (0..n)
                .map(|i| Atom::Role(obda_dllite::RoleId(i as u32), v(0), v(i as u32 + 1)))
                .collect();
            let q = CQ::with_var_head(vec![VarId(0)], atoms);
            let analysis = QueryAnalysis::new(&q, &deps);
            assert_eq!(
                lattice_size(&analysis, 0) as u64,
                bell_number(n),
                "star query with {n} independent atoms"
            );
        }
    }

    /// Chain query: connectivity prunes partitions with disconnected
    /// blocks, so |Lq| < Bell(n).
    #[test]
    fn chain_query_is_pruned_by_connectivity() {
        let mut voc = Vocabulary::new();
        for i in 0..4 {
            voc.role(&format!("r{i}"));
        }
        let deps = Dependencies::compute(&voc, &TBox::new());
        // r0(x0,x1) ∧ r1(x1,x2) ∧ r2(x2,x3): the partition
        // {{0,2},{1}} has a disconnected block.
        let atoms: Vec<Atom> = (0..3)
            .map(|i| Atom::Role(obda_dllite::RoleId(i as u32), v(i as u32), v(i as u32 + 1)))
            .collect();
        let q = CQ::with_var_head(vec![VarId(0)], atoms);
        let analysis = QueryAnalysis::new(&q, &deps);
        let size = lattice_size(&analysis, 0);
        assert!(size < bell_number(3) as usize, "pruned: {size} < 5");
        assert_eq!(size, 4, "all partitions of a 3-chain except {{0,2}},{{1}}");
    }

    #[test]
    fn limit_caps_enumeration() {
        let mut voc = Vocabulary::new();
        for i in 0..6 {
            voc.role(&format!("r{i}"));
        }
        let deps = Dependencies::compute(&voc, &TBox::new());
        let atoms: Vec<Atom> = (0..6)
            .map(|i| Atom::Role(obda_dllite::RoleId(i as u32), v(0), v(i as u32 + 1)))
            .collect();
        let q = CQ::with_var_head(vec![VarId(0)], atoms);
        let analysis = QueryAnalysis::new(&q, &deps);
        assert_eq!(enumerate_safe_covers(&analysis, 10).len(), 10);
    }

    #[test]
    fn precedence_relation() {
        let analysis = example7_analysis();
        let covers = enumerate_safe_covers(&analysis, 0);
        let croot = covers.iter().find(|c| c.num_fragments() == 2).unwrap();
        let bottom = covers.iter().find(|c| c.num_fragments() == 1).unwrap();
        assert!(
            precedes(croot, bottom),
            "Croot is the top, bottom is coarsest"
        );
        assert!(precedes(croot, croot), "reflexive");
        assert!(!precedes(bottom, croot));
    }
}
