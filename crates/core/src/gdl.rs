//! GDL — Greedy Cover Search for DL-LiteR (Algorithm 1).
//!
//! Starting from the root cover, GDL repeatedly explores the set of
//! possible next moves: **unioning** two fragments (a step down the safe
//! cover lattice `Lq`) or **enlarging** a fragment with a connected atom
//! (a step into the generalized space `Gq`). The best cost-improving move
//! is applied; the search stops when no move improves the current cover's
//! estimated cost.
//!
//! Both move kinds are monotone (union decreases the fragment count;
//! enlarge strictly grows a fragment), so the search cannot cycle and
//! terminates after at most `O(n²)` moves.
//!
//! §6.4: a **time-limited** variant stops the exploration once a wall-clock
//! budget is exhausted, returning the best cover found so far — the paper
//! finds 20 ms budgets already capture most of the benefit.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use obda_dllite::TBox;
use obda_query::{FolQuery, CQ, JUCQ};

use crate::cost::{CostEstimator, InstrumentedEstimator};
use crate::cover::{Cover, Fragment};
use crate::reform_cache::ReformCache;
use crate::safety::{root_cover, QueryAnalysis};

/// Tuning knobs for the greedy search.
#[derive(Debug, Clone)]
pub struct GdlConfig {
    /// Wall-clock budget; `None` runs to convergence (§6.4 uses 20 ms).
    pub time_budget: Option<Duration>,
    /// Explore enlarge moves (the `Gq` space). Disabling restricts the
    /// search to the safe-cover lattice — the ablation of §6.3's
    /// observation that GDL picks a generalized cover about half the time.
    pub explore_generalized: bool,
    /// Explore union moves (the `Lq` lattice).
    pub explore_unions: bool,
    /// Minimize fragment UCQs before costing (RAPID-style output).
    pub minimize_fragments: bool,
}

impl Default for GdlConfig {
    fn default() -> Self {
        GdlConfig {
            time_budget: None,
            explore_generalized: true,
            explore_unions: true,
            minimize_fragments: true,
        }
    }
}

/// Outcome of a cover search (GDL or EDL).
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The selected cover.
    pub cover: Cover,
    /// Its JUCQ reformulation (what gets shipped to the RDBMS).
    pub jucq: JUCQ,
    /// Estimated cost of `jucq`.
    pub cost: f64,
    /// Distinct simple (Lq) covers whose cost was estimated.
    pub explored_simple: usize,
    /// Distinct generalized (Gq \ Lq) covers whose cost was estimated.
    pub explored_generalized: usize,
    /// Moves applied from the root cover to the result.
    pub moves_applied: usize,
    /// Total wall-clock time of the search.
    pub elapsed: Duration,
    /// Portion spent inside the cost estimator (§6.4's dominant term).
    pub cost_estimation_time: Duration,
    /// Number of cost estimator invocations.
    pub cost_estimation_calls: usize,
    /// True if the time budget expired before convergence.
    pub budget_exhausted: bool,
}

/// Run GDL on `q` w.r.t. `tbox`.
pub fn gdl(
    q: &CQ,
    tbox: &TBox,
    analysis: &QueryAnalysis,
    estimator: &dyn CostEstimator,
    config: &GdlConfig,
) -> SearchOutcome {
    let start = Instant::now();
    let deadline = config.time_budget.map(|b| start + b);
    let instrumented = InstrumentedEstimator::new(estimator);
    let mut cache = ReformCache::new(q, tbox, config.minimize_fragments);
    let mut cost_memo: HashMap<Cover, f64> = HashMap::new();
    let mut explored_simple = 0usize;
    let mut explored_generalized = 0usize;

    let evaluate = |cover: &Cover,
                    cache: &mut ReformCache,
                    memo: &mut HashMap<Cover, f64>,
                    simple: &mut usize,
                    gen: &mut usize|
     -> f64 {
        if let Some(&c) = memo.get(cover) {
            return c;
        }
        let jucq = cache.jucq_for(cover);
        let cost = instrumented.estimate(&FolQuery::Jucq(jucq));
        memo.insert(cover.clone(), cost);
        if cover.is_simple() {
            *simple += 1;
        } else {
            *gen += 1;
        }
        cost
    };

    let mut current = root_cover(analysis);
    let mut current_cost = evaluate(
        &current,
        &mut cache,
        &mut cost_memo,
        &mut explored_simple,
        &mut explored_generalized,
    );
    let mut moves_applied = 0usize;
    let mut budget_exhausted = false;

    'search: loop {
        let mut best_move: Option<(Cover, f64)> = None;
        for candidate in moves_from(&current, analysis, config) {
            if let Some(d) = deadline {
                if Instant::now() > d {
                    budget_exhausted = true;
                    break;
                }
            }
            let cost = evaluate(
                &candidate,
                &mut cache,
                &mut cost_memo,
                &mut explored_simple,
                &mut explored_generalized,
            );
            let improves = match &best_move {
                None => cost <= current_cost,
                Some((_, best)) => cost < *best,
            };
            if improves {
                best_move = Some((candidate, cost));
            }
        }
        match best_move {
            Some((cover, cost)) => {
                current = cover;
                current_cost = cost;
                moves_applied += 1;
                if budget_exhausted {
                    break 'search;
                }
            }
            None => break 'search,
        }
    }

    let jucq = cache.jucq_for(&current);
    SearchOutcome {
        cover: current,
        jucq,
        cost: current_cost,
        explored_simple,
        explored_generalized,
        moves_applied,
        elapsed: start.elapsed(),
        cost_estimation_time: instrumented.elapsed(),
        cost_estimation_calls: instrumented.calls(),
        budget_exhausted,
    }
}

/// All covers reachable from `cover` in one GDL move.
pub fn moves_from(cover: &Cover, analysis: &QueryAnalysis, config: &GdlConfig) -> Vec<Cover> {
    let mut out = Vec::new();
    let frs = cover.fragments();
    // Union moves: C.union(f1, f2).
    if config.explore_unions && frs.len() >= 2 {
        for i in 0..frs.len() {
            for j in (i + 1)..frs.len() {
                let merged = Fragment::generalized(frs[i].f | frs[j].f, frs[i].g | frs[j].g);
                let mut rest: Vec<Fragment> = frs
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| k != i && k != j)
                    .map(|(_, f)| *f)
                    .collect();
                rest.push(merged);
                let cand = Cover::new(rest);
                if cand.no_inclusion() {
                    out.push(cand);
                }
            }
        }
    }
    // Enlarge moves: C.enlarge(f, a) for atoms a connected to f.
    if config.explore_generalized {
        for i in 0..frs.len() {
            let neigh = analysis.neighbors(frs[i].f);
            for a in crate::cover::mask_indices(neigh) {
                let grown = Fragment::generalized(frs[i].f | (1 << a), frs[i].g);
                let mut rest: Vec<Fragment> = frs
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| k != i)
                    .map(|(_, f)| *f)
                    .collect();
                rest.push(grown);
                let cand = Cover::new(rest);
                if cand.no_inclusion() {
                    out.push(cand);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StructuralEstimator;
    use obda_dllite::{example7_tbox, Dependencies};
    use obda_query::{Atom, Term, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn example7() -> (CQ, obda_dllite::TBox, QueryAnalysis) {
        let (voc, tbox) = example7_tbox();
        let deps = Dependencies::compute(&voc, &tbox);
        let phd = voc.find_concept("PhDStudent").unwrap();
        let works = voc.find_role("worksWith").unwrap();
        let sup = voc.find_role("supervisedBy").unwrap();
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(phd, v(0)),
                Atom::Role(works, v(0), v(1)),
                Atom::Role(sup, v(2), v(1)),
            ],
        );
        let analysis = QueryAnalysis::new(&q, &deps);
        (q, tbox, analysis)
    }

    #[test]
    fn gdl_terminates_and_reports() {
        let (q, tbox, analysis) = example7();
        let out = gdl(
            &q,
            &tbox,
            &analysis,
            &StructuralEstimator,
            &GdlConfig::default(),
        );
        assert!(out.cost.is_finite());
        assert!(out.explored_simple + out.explored_generalized >= 1);
        assert!(!out.budget_exhausted);
        assert!(out.cost_estimation_calls >= 1);
        // The selected cover's JUCQ must expose the original head.
        assert_eq!(out.jucq.head(), q.head());
    }

    #[test]
    fn gdl_result_is_no_worse_than_croot() {
        let (q, tbox, analysis) = example7();
        let est = StructuralEstimator;
        let croot = root_cover(&analysis);
        let mut cache = ReformCache::new(&q, &tbox, true);
        let croot_cost = est.estimate(&FolQuery::Jucq(cache.jucq_for(&croot)));
        let out = gdl(&q, &tbox, &analysis, &est, &GdlConfig::default());
        assert!(out.cost <= croot_cost);
    }

    #[test]
    fn disabling_generalized_stays_in_lq() {
        let (q, tbox, analysis) = example7();
        let config = GdlConfig {
            explore_generalized: false,
            ..Default::default()
        };
        let out = gdl(&q, &tbox, &analysis, &StructuralEstimator, &config);
        assert!(out.cover.is_simple());
        assert_eq!(out.explored_generalized, 0);
    }

    #[test]
    fn moves_are_monotone_no_cycles() {
        let (_q, _tbox, analysis) = example7();
        let config = GdlConfig::default();
        let start = root_cover(&analysis);
        for m in moves_from(&start, &analysis, &config) {
            let fewer_fragments = m.num_fragments() < start.num_fragments();
            let grew: usize = m
                .fragments()
                .iter()
                .map(|f| f.f.count_ones() as usize)
                .sum();
            let orig: usize = start
                .fragments()
                .iter()
                .map(|f| f.f.count_ones() as usize)
                .sum();
            assert!(fewer_fragments || grew > orig, "move must be monotone");
        }
    }

    #[test]
    fn time_budget_zero_still_returns_valid_cover() {
        let (q, tbox, analysis) = example7();
        let config = GdlConfig {
            time_budget: Some(Duration::from_millis(0)),
            ..Default::default()
        };
        let out = gdl(&q, &tbox, &analysis, &StructuralEstimator, &config);
        // Degenerate budget: we still get the root cover reformulation.
        assert!(out.cost.is_finite());
        assert_eq!(out.jucq.head().len(), 1);
    }

    #[test]
    fn enlarge_moves_respect_connectivity() {
        let (_q, _tbox, analysis) = example7();
        let config = GdlConfig {
            explore_unions: false,
            ..Default::default()
        };
        let start = root_cover(&analysis);
        for m in moves_from(&start, &analysis, &config) {
            for fr in m.fragments() {
                assert!(analysis.is_connected(fr.f), "{m:?}");
            }
        }
    }
}
