//! EDL — Exhaustive Covers for DL-LiteR (§5.3).
//!
//! Enumerates all safe covers (`Lq`) and all generalized covers (`Gq`, up
//! to a hard cap — the space is exponential, cf. Table 6) and returns the
//! cover with minimal estimated cost. Impractical beyond very small
//! queries; kept for ground truth in tests and for the Table-6 experiment.

use std::collections::HashMap;
use std::time::Instant;

use obda_dllite::TBox;
use obda_query::{FolQuery, CQ};

use crate::cost::{CostEstimator, InstrumentedEstimator};
use crate::cover::Cover;
use crate::gdl::SearchOutcome;
use crate::genspace::enumerate_generalized_covers;
use crate::reform_cache::ReformCache;
use crate::safety::QueryAnalysis;

/// Exhaustive search over `Lq ∪ Gq` (capped at `cap` generalized covers;
/// 0 = unlimited).
pub fn edl(
    q: &CQ,
    tbox: &TBox,
    analysis: &QueryAnalysis,
    estimator: &dyn CostEstimator,
    cap: usize,
    minimize_fragments: bool,
) -> SearchOutcome {
    let start = Instant::now();
    let instrumented = InstrumentedEstimator::new(estimator);
    let mut cache = ReformCache::new(q, tbox, minimize_fragments);
    let mut memo: HashMap<Cover, f64> = HashMap::new();

    let space = enumerate_generalized_covers(analysis, cap);
    let mut best: Option<(Cover, f64)> = None;
    let mut explored_simple = 0usize;
    let mut explored_generalized = 0usize;
    for cover in &space.covers {
        let cost = match memo.get(cover) {
            Some(&c) => c,
            None => {
                let jucq = cache.jucq_for(cover);
                let c = instrumented.estimate(&FolQuery::Jucq(jucq));
                memo.insert(cover.clone(), c);
                if cover.is_simple() {
                    explored_simple += 1;
                } else {
                    explored_generalized += 1;
                }
                c
            }
        };
        if best.as_ref().is_none_or(|(_, b)| cost < *b) {
            best = Some((cover.clone(), cost));
        }
    }
    let (cover, cost) = best.expect("Gq contains at least the root cover");
    let jucq = cache.jucq_for(&cover);
    SearchOutcome {
        cover,
        jucq,
        cost,
        explored_simple,
        explored_generalized,
        moves_applied: 0,
        elapsed: start.elapsed(),
        cost_estimation_time: instrumented.elapsed(),
        cost_estimation_calls: instrumented.calls(),
        budget_exhausted: space.truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StructuralEstimator;
    use crate::gdl::{gdl, GdlConfig};
    use obda_dllite::{example7_tbox, Dependencies};
    use obda_query::{Atom, Term, VarId};

    fn example7() -> (CQ, obda_dllite::TBox, QueryAnalysis) {
        let (voc, tbox) = example7_tbox();
        let deps = Dependencies::compute(&voc, &tbox);
        let phd = voc.find_concept("PhDStudent").unwrap();
        let works = voc.find_role("worksWith").unwrap();
        let sup = voc.find_role("supervisedBy").unwrap();
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(phd, Term::Var(VarId(0))),
                Atom::Role(works, Term::Var(VarId(0)), Term::Var(VarId(1))),
                Atom::Role(sup, Term::Var(VarId(2)), Term::Var(VarId(1))),
            ],
        );
        let analysis = QueryAnalysis::new(&q, &deps);
        (q, tbox, analysis)
    }

    #[test]
    fn edl_finds_global_optimum() {
        let (q, tbox, analysis) = example7();
        let out = edl(&q, &tbox, &analysis, &StructuralEstimator, 0, true);
        assert!(!out.budget_exhausted);
        assert!(out.explored_simple >= 2, "Lq has 2 covers here");
        assert!(out.explored_generalized >= 1);
        // GDL (greedy) can never beat EDL (exhaustive).
        let g = gdl(
            &q,
            &tbox,
            &analysis,
            &StructuralEstimator,
            &GdlConfig::default(),
        );
        assert!(out.cost <= g.cost + 1e-9);
    }

    #[test]
    fn edl_cap_reports_truncation() {
        let (q, tbox, analysis) = example7();
        let out = edl(&q, &tbox, &analysis, &StructuralEstimator, 2, true);
        assert!(out.budget_exhausted);
        assert!(out.explored_simple + out.explored_generalized <= 2);
    }
}
