//! Set-partition enumeration and Bell numbers.
//!
//! §5.1: the safe-cover lattice is bounded by the Bell number `Bn` of the
//! query's atom count. Partitions are enumerated via restricted-growth
//! strings (RGS): a sequence `s` with `s\[0\] = 0` and
//! `s[i] ≤ 1 + max(s[0..i])`, each encoding one partition.

/// The n-th Bell number (number of partitions of an n-set), via the Bell
/// triangle. Saturates at `u64::MAX` (n ≤ 25 is exact).
pub fn bell_number(n: usize) -> u64 {
    if n == 0 {
        return 1;
    }
    let mut row: Vec<u64> = vec![1];
    for _ in 1..=n {
        let mut next = Vec::with_capacity(row.len() + 1);
        next.push(*row.last().expect("nonempty"));
        for &x in &row {
            let prev = *next.last().expect("nonempty");
            next.push(prev.saturating_add(x));
        }
        row = next;
    }
    row[0]
}

/// Iterate all partitions of `0..n` as block-index assignments
/// (restricted-growth strings). Yields `Vec<usize>` of length `n` where
/// `v[i]` is the block of element `i`.
pub struct Partitions {
    n: usize,
    rgs: Vec<usize>,
    maxes: Vec<usize>,
    done: bool,
}

impl Partitions {
    pub fn new(n: usize) -> Self {
        Partitions {
            n,
            rgs: vec![0; n.max(1)],
            maxes: vec![0; n.max(1)],
            done: n == 0,
        }
    }
}

impl Iterator for Partitions {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let current = self.rgs.clone();
        // Advance to the next RGS.
        let n = self.n;
        let mut i = n;
        loop {
            if i == 1 {
                self.done = true;
                break;
            }
            i -= 1;
            // maxes[i] = max(rgs[0..i]); rgs[i] can rise to maxes[i] + 1.
            if self.rgs[i] <= self.maxes[i] {
                self.rgs[i] += 1;
                // Reset the suffix.
                for j in (i + 1)..n {
                    self.rgs[j] = 0;
                    self.maxes[j] = self.maxes[j - 1].max(self.rgs[j - 1]);
                }
                break;
            }
        }
        Some(current)
    }
}

/// Group element indices by block id: `[0,1,0]` → `[[0,2],\[1\]]`.
pub fn blocks_of(assignment: &[usize]) -> Vec<Vec<usize>> {
    let nblocks = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let mut blocks = vec![Vec::new(); nblocks];
    for (i, &b) in assignment.iter().enumerate() {
        blocks[b].push(i);
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_numbers_match_oeis() {
        // A000110: 1, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975.
        let expect = [1u64, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975];
        for (n, &e) in expect.iter().enumerate() {
            assert_eq!(bell_number(n), e, "B({n})");
        }
    }

    #[test]
    fn partition_count_equals_bell() {
        for n in 1..=8 {
            let count = Partitions::new(n).count() as u64;
            assert_eq!(count, bell_number(n), "n = {n}");
        }
    }

    #[test]
    fn partitions_are_distinct_and_valid() {
        let all: Vec<Vec<usize>> = Partitions::new(4).collect();
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len(), "no duplicates");
        for rgs in &all {
            assert_eq!(rgs[0], 0, "RGS starts at 0");
            let mut max = 0;
            for &x in rgs {
                assert!(x <= max + 1, "restricted growth violated: {rgs:?}");
                max = max.max(x);
            }
        }
    }

    #[test]
    fn blocks_roundtrip() {
        let blocks = blocks_of(&[0, 1, 0, 2]);
        assert_eq!(blocks, vec![vec![0, 2], vec![1], vec![3]]);
        assert_eq!(blocks_of(&[]), Vec::<Vec<usize>>::new());
    }

    #[test]
    fn single_element_partition() {
        let all: Vec<Vec<usize>> = Partitions::new(1).collect();
        assert_eq!(all, vec![vec![0]]);
    }
}
