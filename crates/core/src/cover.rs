//! Query covers (Definition 1) and generalized covers (§5.2), represented
//! as atom bitmasks for fast enumeration.
//!
//! A cover of a query with atoms `{a1 … an}` is a set of fragments — atom
//! subsets — such that (i) the fragments cover all atoms, (ii) no fragment
//! is included in another, and (iii) each fragment is join-connected. A
//! generalized cover pairs each fragment `f` with an exported core `g ⊆ f`
//! (`f‖g`): the `f \ g` atoms act as semijoin reducers.

use obda_query::{connected_subset, CQ};
use obda_reform::FragmentSpec;

/// A set of atoms of a query, as a bitmask (queries have ≤ 64 atoms; in
/// practice ≤ ~12).
pub type AtomMask = u64;

/// Mask with the lowest `n` bits set.
pub fn full_mask(n: usize) -> AtomMask {
    debug_assert!(n <= 64);
    if n == 64 {
        !0
    } else {
        (1u64 << n) - 1
    }
}

/// Iterate the atom indices of a mask.
pub fn mask_indices(mask: AtomMask) -> impl Iterator<Item = usize> {
    let mut m = mask;
    std::iter::from_fn(move || {
        if m == 0 {
            None
        } else {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            Some(i)
        }
    })
}

/// Number of atoms in a mask.
pub fn mask_len(mask: AtomMask) -> usize {
    mask.count_ones() as usize
}

/// One generalized fragment `f‖g`. Simple fragments have `f == g`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Fragment {
    pub f: AtomMask,
    pub g: AtomMask,
}

impl Fragment {
    pub fn simple(mask: AtomMask) -> Self {
        Fragment { f: mask, g: mask }
    }

    pub fn generalized(f: AtomMask, g: AtomMask) -> Self {
        debug_assert_eq!(g & !f, 0, "g ⊆ f violated");
        Fragment { f, g }
    }

    pub fn is_simple(&self) -> bool {
        self.f == self.g
    }

    /// Convert to the reformulation crate's index-based spec.
    pub fn to_spec(&self) -> FragmentSpec {
        FragmentSpec::generalized(
            mask_indices(self.f).collect(),
            mask_indices(self.g).collect(),
        )
    }
}

/// A (generalized) cover: a set of fragments. Kept sorted for canonical
/// comparison/deduplication during enumeration.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Cover {
    fragments: Vec<Fragment>,
}

impl Cover {
    pub fn new(mut fragments: Vec<Fragment>) -> Self {
        fragments.sort_unstable();
        fragments.dedup();
        Cover { fragments }
    }

    /// The single-fragment cover of the whole query.
    pub fn trivial(num_atoms: usize) -> Self {
        Cover::new(vec![Fragment::simple(full_mask(num_atoms))])
    }

    pub fn fragments(&self) -> &[Fragment] {
        &self.fragments
    }

    pub fn num_fragments(&self) -> usize {
        self.fragments.len()
    }

    /// Do the `f`-parts satisfy Definition 1 (i): cover all atoms?
    pub fn covers_all(&self, num_atoms: usize) -> bool {
        let mut m: AtomMask = 0;
        for fr in &self.fragments {
            m |= fr.f;
        }
        m == full_mask(num_atoms)
    }

    /// Definition 1 (ii) / §5.2: no fragment's `f` included in another's.
    pub fn no_inclusion(&self) -> bool {
        for (i, a) in self.fragments.iter().enumerate() {
            for (j, b) in self.fragments.iter().enumerate() {
                if i != j && a.f & b.f == a.f {
                    return false;
                }
            }
        }
        true
    }

    /// Are the `g`-parts a partition of the atoms? (Required for safe
    /// covers, Definition 5.)
    pub fn g_is_partition(&self, num_atoms: usize) -> bool {
        let mut seen: AtomMask = 0;
        for fr in &self.fragments {
            if fr.g & seen != 0 {
                return false;
            }
            seen |= fr.g;
        }
        seen == full_mask(num_atoms)
    }

    /// Definition 1 (iii) / §5.2: every fragment's `f`-atoms form a
    /// connected subquery.
    pub fn fragments_connected(&self, q: &CQ) -> bool {
        self.fragments.iter().all(|fr| {
            let idx: Vec<usize> = mask_indices(fr.f).collect();
            connected_subset(q.atoms(), &idx)
        })
    }

    /// Full validity check for a generalized cover of `q`.
    pub fn is_valid(&self, q: &CQ) -> bool {
        !self.fragments.is_empty()
            && self.covers_all(q.num_atoms())
            && self.no_inclusion()
            && self.fragments_connected(q)
    }

    /// Convert to reformulation specs (sorted fragment order).
    pub fn to_specs(&self) -> Vec<FragmentSpec> {
        self.fragments.iter().map(Fragment::to_spec).collect()
    }

    /// Is every fragment simple (`f == g`)?
    pub fn is_simple(&self) -> bool {
        self.fragments.iter().all(Fragment::is_simple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{ConceptId, RoleId};
    use obda_query::{Atom, Term, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn chain3() -> CQ {
        // A(x) ∧ r(x, y) ∧ B(y): atoms 0–2, a chain.
        CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(ConceptId(0), v(0)),
                Atom::Role(RoleId(0), v(0), v(1)),
                Atom::Concept(ConceptId(1), v(1)),
            ],
        )
    }

    #[test]
    fn mask_helpers() {
        assert_eq!(full_mask(3), 0b111);
        assert_eq!(full_mask(0), 0);
        assert_eq!(mask_indices(0b101).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(mask_len(0b1011), 3);
    }

    #[test]
    fn trivial_cover_is_valid() {
        let q = chain3();
        let c = Cover::trivial(q.num_atoms());
        assert!(c.is_valid(&q));
        assert!(c.is_simple());
        assert!(c.g_is_partition(3));
    }

    #[test]
    fn partition_covers_are_valid_when_connected() {
        let q = chain3();
        // {A(x), r(x,y)} + {B(y)}: both connected.
        let c = Cover::new(vec![Fragment::simple(0b011), Fragment::simple(0b100)]);
        assert!(c.is_valid(&q));
        // {A(x), B(y)} + {r(x,y)}: first block disconnected.
        let c2 = Cover::new(vec![Fragment::simple(0b101), Fragment::simple(0b010)]);
        assert!(!c2.is_valid(&q));
        assert!(c2.covers_all(3) && c2.no_inclusion());
        assert!(!c2.fragments_connected(&q));
    }

    #[test]
    fn inclusion_between_fragments_is_rejected() {
        let q = chain3();
        let c = Cover::new(vec![Fragment::simple(0b111), Fragment::simple(0b001)]);
        assert!(!c.no_inclusion());
        assert!(!c.is_valid(&q));
    }

    #[test]
    fn overlapping_covers_are_allowed() {
        let q = chain3();
        // {A, r} and {r, B} overlap on atom 1 — valid cover, g not a
        // partition.
        let c = Cover::new(vec![Fragment::simple(0b011), Fragment::simple(0b110)]);
        assert!(c.is_valid(&q));
        assert!(!c.g_is_partition(3));
    }

    #[test]
    fn generalized_fragment_invariants() {
        let fr = Fragment::generalized(0b111, 0b001);
        assert!(!fr.is_simple());
        let spec = fr.to_spec();
        assert_eq!(spec.f, vec![0, 1, 2]);
        assert_eq!(spec.g, vec![0]);
    }

    #[test]
    fn cover_ordering_is_canonical() {
        let a = Cover::new(vec![Fragment::simple(0b100), Fragment::simple(0b011)]);
        let b = Cover::new(vec![Fragment::simple(0b011), Fragment::simple(0b100)]);
        assert_eq!(a, b);
    }
}
