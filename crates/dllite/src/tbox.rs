//! The TBox: a deduplicated set of DL-LiteR axioms with the applicability
//! indexes needed by backward reformulation (PerfectRef) and by the
//! dependency analysis of Definition 4.

use std::collections::{HashMap, HashSet};

use crate::axiom::{Axiom, ConceptInclusion, RoleInclusion};
use crate::expr::{BasicConcept, Role};
use crate::ids::RoleId;
use crate::vocab::Vocabulary;

/// An ontology: a set of DL-LiteR constraints over a [`Vocabulary`].
///
/// Role inclusions are stored normalized (direct role on the right-hand
/// side, see [`Axiom::normalized`]); all accessors observe that invariant.
#[derive(Debug, Default, Clone)]
pub struct TBox {
    axioms: Vec<Axiom>,
    seen: HashSet<Axiom>,
    /// Positive concept inclusions grouped by their right-hand side, the key
    /// lookup of backward application: to specialize an atom matching `rhs`,
    /// enumerate this bucket.
    by_concept_rhs: HashMap<BasicConcept, Vec<ConceptInclusion>>,
    /// Positive role inclusions grouped by right-hand-side role *name*
    /// (normalized direct).
    by_role_rhs: HashMap<RoleId, Vec<RoleInclusion>>,
}

impl TBox {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an axiom (idempotent modulo [`Axiom::normalized`]).
    /// Returns `true` if the axiom was new.
    pub fn add(&mut self, axiom: Axiom) -> bool {
        let axiom = axiom.normalized();
        if !self.seen.insert(axiom) {
            return false;
        }
        match axiom {
            Axiom::Concept(ci) if !ci.negated => {
                self.by_concept_rhs.entry(ci.rhs).or_default().push(ci);
            }
            Axiom::Role(ri) if !ri.negated => {
                debug_assert!(!ri.rhs.inverse);
                self.by_role_rhs.entry(ri.rhs.name).or_default().push(ri);
            }
            _ => {}
        }
        self.axioms.push(axiom);
        true
    }

    pub fn extend<I: IntoIterator<Item = Axiom>>(&mut self, axioms: I) {
        for ax in axioms {
            self.add(ax);
        }
    }

    pub fn len(&self) -> usize {
        self.axioms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.axioms.is_empty()
    }

    pub fn contains(&self, axiom: &Axiom) -> bool {
        self.seen.contains(&axiom.normalized())
    }

    /// All axioms in insertion order (normalized).
    pub fn axioms(&self) -> &[Axiom] {
        &self.axioms
    }

    /// All positive axioms (the ones driving reformulation and the chase).
    pub fn positive_axioms(&self) -> impl Iterator<Item = &Axiom> {
        self.axioms.iter().filter(|a| a.is_positive())
    }

    /// All negative axioms (disjointness constraints, checked for
    /// consistency only).
    pub fn negative_axioms(&self) -> impl Iterator<Item = &Axiom> {
        self.axioms.iter().filter(|a| a.is_negative())
    }

    /// Positive concept inclusions whose right-hand side is exactly `rhs`.
    ///
    /// Backward application: an atom whose extension is `rhs` may hold
    /// *because* any of the returned `lhs` held.
    pub fn concept_inclusions_into(&self, rhs: BasicConcept) -> &[ConceptInclusion] {
        self.by_concept_rhs
            .get(&rhs)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Positive role inclusions whose right-hand side mentions the role name
    /// of `rhs`. The returned inclusions are normalized (`rhs` direct), so a
    /// caller asking about `R⁻ ⊑ ...` forms must invert both sides.
    pub fn role_inclusions_into(&self, rhs: RoleId) -> &[RoleInclusion] {
        self.by_role_rhs.get(&rhs).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of positive axioms.
    pub fn num_positive(&self) -> usize {
        self.positive_axioms().count()
    }

    /// Number of negative (disjointness) axioms.
    pub fn num_negative(&self) -> usize {
        self.negative_axioms().count()
    }

    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> impl std::fmt::Display + 'a {
        struct D<'a>(&'a TBox, &'a Vocabulary);
        impl std::fmt::Display for D<'_> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                for ax in &self.0.axioms {
                    writeln!(f, "{}", ax.display(self.1))?;
                }
                Ok(())
            }
        }
        D(self, voc)
    }
}

/// Convenience builder used by tests, examples and the LUBM generator.
///
/// Wraps a [`Vocabulary`] and a [`TBox`] and exposes name-based axiom
/// construction: `b.sub("PhDStudent", "Researcher")`.
#[derive(Debug, Default)]
pub struct TBoxBuilder {
    pub voc: Vocabulary,
    pub tbox: TBox,
}

impl TBoxBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse a basic-concept spec: `"A"`, `"exists r"`, `"exists r-"`.
    pub fn basic(&mut self, spec: &str) -> BasicConcept {
        let spec = spec.trim();
        if let Some(role_part) = spec.strip_prefix("exists ") {
            BasicConcept::Exists(self.role_expr(role_part))
        } else {
            BasicConcept::Atomic(self.voc.concept(spec))
        }
    }

    /// Parse a role spec: `"r"` or `"r-"`.
    pub fn role_expr(&mut self, spec: &str) -> Role {
        let spec = spec.trim();
        if let Some(name) = spec.strip_suffix('-') {
            Role::inv(self.voc.role(name))
        } else {
            Role::direct(self.voc.role(spec))
        }
    }

    /// Positive concept inclusion from specs.
    pub fn sub(&mut self, lhs: &str, rhs: &str) -> &mut Self {
        let l = self.basic(lhs);
        let r = self.basic(rhs);
        self.tbox.add(Axiom::concept(l, r));
        self
    }

    /// Negative concept inclusion (`lhs ⊑ ¬rhs`) from specs.
    pub fn disjoint(&mut self, lhs: &str, rhs: &str) -> &mut Self {
        let l = self.basic(lhs);
        let r = self.basic(rhs);
        self.tbox.add(Axiom::concept_neg(l, r));
        self
    }

    /// Positive role inclusion from specs.
    pub fn sub_role(&mut self, lhs: &str, rhs: &str) -> &mut Self {
        let l = self.role_expr(lhs);
        let r = self.role_expr(rhs);
        self.tbox.add(Axiom::role(l, r));
        self
    }

    /// Negative role inclusion from specs.
    pub fn disjoint_role(&mut self, lhs: &str, rhs: &str) -> &mut Self {
        let l = self.role_expr(lhs);
        let r = self.role_expr(rhs);
        self.tbox.add(Axiom::role_neg(l, r));
        self
    }

    pub fn finish(self) -> (Vocabulary, TBox) {
        (self.voc, self.tbox)
    }
}

/// Build the sample TBox of paper Table 2 (Example 1). Used across the
/// workspace in tests and docs.
pub fn example1_tbox() -> (Vocabulary, TBox) {
    let mut b = TBoxBuilder::new();
    b.sub("PhDStudent", "Researcher") // (T1)
        .sub("exists worksWith", "Researcher") // (T2)
        .sub("exists worksWith-", "Researcher") // (T3)
        .sub_role("worksWith", "worksWith-") // (T4)
        .sub_role("supervisedBy", "worksWith") // (T5)
        .sub("exists supervisedBy", "PhDStudent") // (T6)
        .disjoint("PhDStudent", "exists supervisedBy-"); // (T7)
    b.finish()
}

/// Build the running-example TBox of paper Example 7:
/// `Graduate ⊑ ∃supervisedBy`, `supervisedBy ⊑ worksWith`.
pub fn example7_tbox() -> (Vocabulary, TBox) {
    let mut b = TBoxBuilder::new();
    // Intern the concepts/roles in a stable order first so tests can rely
    // on ids: PhDStudent, Graduate, worksWith, supervisedBy.
    b.voc.concept("PhDStudent");
    b.voc.concept("Graduate");
    b.voc.role("worksWith");
    b.voc.role("supervisedBy");
    b.sub("Graduate", "exists supervisedBy")
        .sub_role("supervisedBy", "worksWith");
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ConceptId;

    #[test]
    fn add_deduplicates() {
        let (_, mut tbox) = example1_tbox();
        let n = tbox.len();
        let a = BasicConcept::Atomic(ConceptId(0));
        let b = BasicConcept::Atomic(ConceptId(1));
        assert!(!tbox.add(Axiom::concept(a, b)), "T1 already present");
        assert_eq!(tbox.len(), n);
    }

    #[test]
    fn example1_has_expected_shape() {
        let (voc, tbox) = example1_tbox();
        assert_eq!(tbox.len(), 7);
        assert_eq!(tbox.num_positive(), 6);
        assert_eq!(tbox.num_negative(), 1);
        assert_eq!(voc.num_concepts(), 2); // PhDStudent, Researcher
        assert_eq!(voc.num_roles(), 2); // worksWith, supervisedBy
    }

    #[test]
    fn rhs_index_finds_backward_applicable_axioms() {
        let (voc, tbox) = example1_tbox();
        let researcher = voc.find_concept("Researcher").unwrap();
        let into_researcher = tbox.concept_inclusions_into(BasicConcept::Atomic(researcher));
        // T1, T2, T3 all conclude Researcher.
        assert_eq!(into_researcher.len(), 3);

        let works = voc.find_role("worksWith").unwrap();
        let into_works = tbox.role_inclusions_into(works);
        // T4 (worksWith ⊑ worksWith⁻, normalized to worksWith⁻ ⊑ worksWith)
        // and T5 (supervisedBy ⊑ worksWith).
        assert_eq!(into_works.len(), 2);
        for ri in into_works {
            assert!(!ri.rhs.inverse, "index stores normalized inclusions");
            assert_eq!(ri.rhs.name, works);
        }
    }

    #[test]
    fn negative_axioms_not_indexed_for_backward_application() {
        let (voc, tbox) = example1_tbox();
        let sup = voc.find_role("supervisedBy").unwrap();
        let phd = voc.find_concept("PhDStudent").unwrap();
        // T7 is PhDStudent ⊑ ¬∃supervisedBy⁻; it must not show up as a way
        // to derive ∃supervisedBy⁻.
        let bucket = tbox.concept_inclusions_into(BasicConcept::Exists(Role::inv(sup)));
        assert!(bucket.iter().all(|ci| !ci.negated));
        assert!(bucket.is_empty());
        // ...but T6's bucket (into PhDStudent) exists.
        assert_eq!(
            tbox.concept_inclusions_into(BasicConcept::Atomic(phd))
                .len(),
            1
        );
    }

    #[test]
    fn builder_parses_inverse_and_exists() {
        let mut b = TBoxBuilder::new();
        let e = b.basic("exists r-");
        match e {
            BasicConcept::Exists(r) => assert!(r.inverse),
            _ => panic!("expected exists"),
        }
        let a = b.basic("Plain");
        assert!(matches!(a, BasicConcept::Atomic(_)));
    }
}
