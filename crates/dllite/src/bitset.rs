//! A minimal fixed-width bitset used for predicate-dependency sets.
//!
//! Dependency sets (`dep(N)`, Definition 4) are subsets of the predicate
//! name space `NC ∪ NR`; for TBoxes of a few hundred predicates a flat
//! `Vec<u64>` beats hash sets by a wide margin and makes the frequent
//! "common dependency?" intersection test (Definition 5) a few AND-words.

/// Fixed-capacity bitset over `0..nbits`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitSet {
    words: Vec<u64>,
    nbits: usize,
}

impl BitSet {
    /// Empty set over a universe of `nbits` elements.
    pub fn new(nbits: usize) -> Self {
        BitSet {
            words: vec![0; nbits.div_ceil(64)],
            nbits,
        }
    }

    pub fn capacity(&self) -> usize {
        self.nbits
    }

    /// Insert `i`; returns `true` if newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.nbits, "bit {i} out of range {}", self.nbits);
        let (w, b) = (i / 64, i % 64);
        let mask = 1u64 << b;
        let newly = self.words[w] & mask == 0;
        self.words[w] |= mask;
        newly
    }

    pub fn contains(&self, i: usize) -> bool {
        if i >= self.nbits {
            return false;
        }
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// `self |= other`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let before = *a;
            *a |= b;
            changed |= *a != before;
        }
        changed
    }

    /// Does `self ∩ other ≠ ∅`? The safety test of Definition 5.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate over members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129), "second insert reports no change");
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(1000), "out of range is simply absent");
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(3);
        b.insert(70);
        assert!(!a.intersects(&b));
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert!(a.contains(70));
        assert!(a.intersects(&b));
    }

    #[test]
    fn iter_yields_sorted_members() {
        let mut s = BitSet::new(200);
        for i in [150, 3, 64, 65, 0] {
            s.insert(i);
        }
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 3, 64, 65, 150]);
    }

    #[test]
    fn empty_set() {
        let s = BitSet::new(10);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
