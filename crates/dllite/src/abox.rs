//! The ABox: the database of explicit facts.
//!
//! Concept assertions `A(a)` and role assertions `R(a, b)` over
//! dictionary-encoded individuals (§2.1). The ABox is a *set*: duplicate
//! assertions are ignored, in keeping with the set semantics of query
//! answering (§2.2).

use std::collections::HashMap;

use crate::delta::AboxDelta;
use crate::ids::{ConceptId, IndividualId, RoleId};
use crate::vocab::Vocabulary;

/// A database of facts.
///
/// The membership indexes store each fact's position in its assertion
/// vector, so retraction is O(1) (`swap_remove` + one index fix-up)
/// rather than a scan — deletions run inside the serving layer's writer
/// critical section, where an O(|ABox|) scan per deleted fact would
/// stall every concurrent write.
#[derive(Debug, Default, Clone)]
pub struct ABox {
    concept_assertions: Vec<(ConceptId, IndividualId)>,
    role_assertions: Vec<(RoleId, IndividualId, IndividualId)>,
    seen_concept: HashMap<(ConceptId, IndividualId), u32>,
    seen_role: HashMap<(RoleId, IndividualId, IndividualId), u32>,
}

/// Set equality: two ABoxes are equal when they hold the same facts,
/// regardless of assertion order (the paper's set semantics, §2.2).
/// Compared on fact keys only — vector positions are an internal
/// bookkeeping detail that legitimately differs across histories.
impl PartialEq for ABox {
    fn eq(&self, other: &Self) -> bool {
        self.seen_concept.len() == other.seen_concept.len()
            && self.seen_role.len() == other.seen_role.len()
            && self
                .seen_concept
                .keys()
                .all(|f| other.seen_concept.contains_key(f))
            && self
                .seen_role
                .keys()
                .all(|f| other.seen_role.contains_key(f))
    }
}

impl Eq for ABox {}

impl ABox {
    pub fn new() -> Self {
        Self::default()
    }

    /// Assert `A(a)`. Returns `true` if the fact is new.
    pub fn assert_concept(&mut self, concept: ConceptId, ind: IndividualId) -> bool {
        match self.seen_concept.entry((concept, ind)) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.concept_assertions.len() as u32);
                self.concept_assertions.push((concept, ind));
                true
            }
        }
    }

    /// Assert `R(a, b)`. Returns `true` if the fact is new.
    pub fn assert_role(&mut self, role: RoleId, a: IndividualId, b: IndividualId) -> bool {
        match self.seen_role.entry((role, a, b)) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.role_assertions.len() as u32);
                self.role_assertions.push((role, a, b));
                true
            }
        }
    }

    /// Retract `A(a)`. Returns `true` if the fact existed. O(1).
    pub fn retract_concept(&mut self, concept: ConceptId, ind: IndividualId) -> bool {
        match self.seen_concept.remove(&(concept, ind)) {
            Some(pos) => {
                self.concept_assertions.swap_remove(pos as usize);
                if let Some(&moved) = self.concept_assertions.get(pos as usize) {
                    self.seen_concept.insert(moved, pos);
                }
                true
            }
            None => false,
        }
    }

    /// Retract `R(a, b)`. Returns `true` if the fact existed. O(1).
    pub fn retract_role(&mut self, role: RoleId, a: IndividualId, b: IndividualId) -> bool {
        match self.seen_role.remove(&(role, a, b)) {
            Some(pos) => {
                self.role_assertions.swap_remove(pos as usize);
                if let Some(&moved) = self.role_assertions.get(pos as usize) {
                    self.seen_role.insert(moved, pos);
                }
                true
            }
            None => false,
        }
    }

    /// Commit a batch of changes: all insertions first, then all
    /// deletions (see [`AboxDelta`] for the batch semantics). Returns the
    /// **effective** sub-delta — only the insertions that were new and the
    /// deletions that hit an existing fact, in commit order — which is
    /// exactly what incremental storage layouts and statistics must apply
    /// to stay in sync with this ABox. (`new_individuals` is not copied
    /// into the effective delta: interning is the vocabulary's business.)
    pub fn apply(&mut self, delta: &AboxDelta) -> AboxDelta {
        let mut eff = AboxDelta::new();
        for &(c, a) in &delta.insert_concepts {
            if self.assert_concept(c, a) {
                eff.insert_concepts.push((c, a));
            }
        }
        for &(r, a, b) in &delta.insert_roles {
            if self.assert_role(r, a, b) {
                eff.insert_roles.push((r, a, b));
            }
        }
        for &(c, a) in &delta.delete_concepts {
            if self.retract_concept(c, a) {
                eff.delete_concepts.push((c, a));
            }
        }
        for &(r, a, b) in &delta.delete_roles {
            if self.retract_role(r, a, b) {
                eff.delete_roles.push((r, a, b));
            }
        }
        eff
    }

    pub fn has_concept(&self, concept: ConceptId, ind: IndividualId) -> bool {
        self.seen_concept.contains_key(&(concept, ind))
    }

    pub fn has_role(&self, role: RoleId, a: IndividualId, b: IndividualId) -> bool {
        self.seen_role.contains_key(&(role, a, b))
    }

    pub fn concept_assertions(&self) -> &[(ConceptId, IndividualId)] {
        &self.concept_assertions
    }

    pub fn role_assertions(&self) -> &[(RoleId, IndividualId, IndividualId)] {
        &self.role_assertions
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.concept_assertions.len() + self.role_assertions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Members of concept `A` (explicit only — no reasoning).
    pub fn concept_members(&self, concept: ConceptId) -> impl Iterator<Item = IndividualId> + '_ {
        self.concept_assertions
            .iter()
            .filter(move |(c, _)| *c == concept)
            .map(|&(_, i)| i)
    }

    /// Pairs of role `R` (explicit only — no reasoning).
    pub fn role_pairs(
        &self,
        role: RoleId,
    ) -> impl Iterator<Item = (IndividualId, IndividualId)> + '_ {
        self.role_assertions
            .iter()
            .filter(move |(r, _, _)| *r == role)
            .map(|&(_, a, b)| (a, b))
    }

    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> impl std::fmt::Display + 'a {
        struct D<'a>(&'a ABox, &'a Vocabulary);
        impl std::fmt::Display for D<'_> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                for &(c, i) in &self.0.concept_assertions {
                    writeln!(
                        f,
                        "{}({})",
                        self.1.concept_name(c),
                        self.1.individual_name(i)
                    )?;
                }
                for &(r, a, b) in &self.0.role_assertions {
                    writeln!(
                        f,
                        "{}({}, {})",
                        self.1.role_name(r),
                        self.1.individual_name(a),
                        self.1.individual_name(b)
                    )?;
                }
                Ok(())
            }
        }
        D(self, voc)
    }
}

/// Build the sample ABox of paper Example 1 over an existing vocabulary
/// (must contain the Example-1 names).
pub fn example1_abox(voc: &mut Vocabulary) -> ABox {
    let works = voc.role("worksWith");
    let sup = voc.role("supervisedBy");
    let ioana = voc.individual("Ioana");
    let francois = voc.individual("Francois");
    let damian = voc.individual("Damian");
    let mut abox = ABox::new();
    abox.assert_role(works, ioana, francois); // (A1)
    abox.assert_role(sup, damian, ioana); // (A2)
    abox.assert_role(sup, damian, francois); // (A3)
    abox
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assertions_deduplicate() {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let x = voc.individual("x");
        let mut abox = ABox::new();
        assert!(abox.assert_concept(a, x));
        assert!(!abox.assert_concept(a, x));
        assert_eq!(abox.len(), 1);
    }

    #[test]
    fn role_assertions_are_ordered_pairs() {
        let mut voc = Vocabulary::new();
        let r = voc.role("r");
        let x = voc.individual("x");
        let y = voc.individual("y");
        let mut abox = ABox::new();
        assert!(abox.assert_role(r, x, y));
        assert!(
            abox.assert_role(r, y, x),
            "(y,x) is a distinct fact from (x,y)"
        );
        assert!(abox.has_role(r, x, y));
        assert!(abox.has_role(r, y, x));
        assert_eq!(abox.len(), 2);
    }

    #[test]
    fn example1_abox_shape() {
        let (mut voc, _) = crate::tbox::example1_tbox();
        let abox = example1_abox(&mut voc);
        assert_eq!(abox.len(), 3);
        assert_eq!(abox.concept_assertions().len(), 0);
        let sup = voc.find_role("supervisedBy").unwrap();
        assert_eq!(abox.role_pairs(sup).count(), 2);
    }

    #[test]
    fn retract_removes_and_reports() {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let r = voc.role("r");
        let x = voc.individual("x");
        let y = voc.individual("y");
        let mut abox = ABox::new();
        abox.assert_concept(a, x);
        abox.assert_role(r, x, y);
        assert!(abox.retract_concept(a, x));
        assert!(!abox.retract_concept(a, x), "already gone");
        assert!(abox.retract_role(r, x, y));
        assert!(!abox.retract_role(r, y, x), "never asserted");
        assert!(abox.is_empty());
        assert!(!abox.has_concept(a, x));
        assert!(!abox.has_role(r, x, y));
    }

    #[test]
    fn apply_returns_the_effective_sub_delta() {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let r = voc.role("r");
        let x = voc.individual("x");
        let y = voc.individual("y");
        let mut abox = ABox::new();
        abox.assert_concept(a, x);
        abox.assert_role(r, x, y);
        let delta = crate::delta::AboxDelta::new()
            .insert_concept(a, x) // duplicate: ineffective
            .insert_concept(a, y) // new
            .delete_role(r, x, y) // hits
            .delete_role(r, y, x); // missing: ineffective
        let eff = abox.apply(&delta);
        assert_eq!(eff.insert_concepts, vec![(a, y)]);
        assert_eq!(eff.delete_roles, vec![(r, x, y)]);
        assert!(eff.delete_concepts.is_empty() && eff.insert_roles.is_empty());
        assert!(abox.has_concept(a, y));
        assert!(!abox.has_role(r, x, y));
        assert_eq!(abox.len(), 2);
    }

    #[test]
    fn abox_equality_is_order_insensitive() {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let b = voc.concept("B");
        let x = voc.individual("x");
        let mut fwd = ABox::new();
        fwd.assert_concept(a, x);
        fwd.assert_concept(b, x);
        let mut rev = ABox::new();
        rev.assert_concept(b, x);
        rev.assert_concept(a, x);
        assert_eq!(fwd, rev);
        rev.retract_concept(a, x);
        assert_ne!(fwd, rev);
    }

    #[test]
    fn concept_members_filters_by_concept() {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let b = voc.concept("B");
        let x = voc.individual("x");
        let y = voc.individual("y");
        let mut abox = ABox::new();
        abox.assert_concept(a, x);
        abox.assert_concept(b, y);
        let members: Vec<_> = abox.concept_members(a).collect();
        assert_eq!(members, vec![x]);
    }
}
