//! The ABox: the database of explicit facts.
//!
//! Concept assertions `A(a)` and role assertions `R(a, b)` over
//! dictionary-encoded individuals (§2.1). The ABox is a *set*: duplicate
//! assertions are ignored, in keeping with the set semantics of query
//! answering (§2.2).

use std::collections::HashSet;

use crate::ids::{ConceptId, IndividualId, RoleId};
use crate::vocab::Vocabulary;

/// A database of facts.
#[derive(Debug, Default, Clone)]
pub struct ABox {
    concept_assertions: Vec<(ConceptId, IndividualId)>,
    role_assertions: Vec<(RoleId, IndividualId, IndividualId)>,
    seen_concept: HashSet<(ConceptId, IndividualId)>,
    seen_role: HashSet<(RoleId, IndividualId, IndividualId)>,
}

impl ABox {
    pub fn new() -> Self {
        Self::default()
    }

    /// Assert `A(a)`. Returns `true` if the fact is new.
    pub fn assert_concept(&mut self, concept: ConceptId, ind: IndividualId) -> bool {
        if self.seen_concept.insert((concept, ind)) {
            self.concept_assertions.push((concept, ind));
            true
        } else {
            false
        }
    }

    /// Assert `R(a, b)`. Returns `true` if the fact is new.
    pub fn assert_role(&mut self, role: RoleId, a: IndividualId, b: IndividualId) -> bool {
        if self.seen_role.insert((role, a, b)) {
            self.role_assertions.push((role, a, b));
            true
        } else {
            false
        }
    }

    pub fn has_concept(&self, concept: ConceptId, ind: IndividualId) -> bool {
        self.seen_concept.contains(&(concept, ind))
    }

    pub fn has_role(&self, role: RoleId, a: IndividualId, b: IndividualId) -> bool {
        self.seen_role.contains(&(role, a, b))
    }

    pub fn concept_assertions(&self) -> &[(ConceptId, IndividualId)] {
        &self.concept_assertions
    }

    pub fn role_assertions(&self) -> &[(RoleId, IndividualId, IndividualId)] {
        &self.role_assertions
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.concept_assertions.len() + self.role_assertions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Members of concept `A` (explicit only — no reasoning).
    pub fn concept_members(&self, concept: ConceptId) -> impl Iterator<Item = IndividualId> + '_ {
        self.concept_assertions
            .iter()
            .filter(move |(c, _)| *c == concept)
            .map(|&(_, i)| i)
    }

    /// Pairs of role `R` (explicit only — no reasoning).
    pub fn role_pairs(
        &self,
        role: RoleId,
    ) -> impl Iterator<Item = (IndividualId, IndividualId)> + '_ {
        self.role_assertions
            .iter()
            .filter(move |(r, _, _)| *r == role)
            .map(|&(_, a, b)| (a, b))
    }

    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> impl std::fmt::Display + 'a {
        struct D<'a>(&'a ABox, &'a Vocabulary);
        impl std::fmt::Display for D<'_> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                for &(c, i) in &self.0.concept_assertions {
                    writeln!(
                        f,
                        "{}({})",
                        self.1.concept_name(c),
                        self.1.individual_name(i)
                    )?;
                }
                for &(r, a, b) in &self.0.role_assertions {
                    writeln!(
                        f,
                        "{}({}, {})",
                        self.1.role_name(r),
                        self.1.individual_name(a),
                        self.1.individual_name(b)
                    )?;
                }
                Ok(())
            }
        }
        D(self, voc)
    }
}

/// Build the sample ABox of paper Example 1 over an existing vocabulary
/// (must contain the Example-1 names).
pub fn example1_abox(voc: &mut Vocabulary) -> ABox {
    let works = voc.role("worksWith");
    let sup = voc.role("supervisedBy");
    let ioana = voc.individual("Ioana");
    let francois = voc.individual("Francois");
    let damian = voc.individual("Damian");
    let mut abox = ABox::new();
    abox.assert_role(works, ioana, francois); // (A1)
    abox.assert_role(sup, damian, ioana); // (A2)
    abox.assert_role(sup, damian, francois); // (A3)
    abox
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assertions_deduplicate() {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let x = voc.individual("x");
        let mut abox = ABox::new();
        assert!(abox.assert_concept(a, x));
        assert!(!abox.assert_concept(a, x));
        assert_eq!(abox.len(), 1);
    }

    #[test]
    fn role_assertions_are_ordered_pairs() {
        let mut voc = Vocabulary::new();
        let r = voc.role("r");
        let x = voc.individual("x");
        let y = voc.individual("y");
        let mut abox = ABox::new();
        assert!(abox.assert_role(r, x, y));
        assert!(
            abox.assert_role(r, y, x),
            "(y,x) is a distinct fact from (x,y)"
        );
        assert!(abox.has_role(r, x, y));
        assert!(abox.has_role(r, y, x));
        assert_eq!(abox.len(), 2);
    }

    #[test]
    fn example1_abox_shape() {
        let (mut voc, _) = crate::tbox::example1_tbox();
        let abox = example1_abox(&mut voc);
        assert_eq!(abox.len(), 3);
        assert_eq!(abox.concept_assertions().len(), 0);
        let sup = voc.find_role("supervisedBy").unwrap();
        assert_eq!(abox.role_pairs(sup).count(), 2);
    }

    #[test]
    fn concept_members_filters_by_concept() {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let b = voc.concept("B");
        let x = voc.individual("x");
        let y = voc.individual("y");
        let mut abox = ABox::new();
        abox.assert_concept(a, x);
        abox.assert_concept(b, y);
        let members: Vec<_> = abox.concept_members(a).collect();
        assert_eq!(members, vec![x]);
    }
}
