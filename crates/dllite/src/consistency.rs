//! KB consistency checking.
//!
//! A KB `K = ⟨T, A⟩` is consistent iff none of its explicit or inferred
//! facts contradicts a constraint with negation (§2.1). Since the
//! (restricted) chase is a universal model of the positive axioms,
//! consistency reduces to checking every *asserted* negative constraint
//! against the chased instance: `B1 ⊑ ¬B2` is violated iff some term is in
//! both `B1` and `B2`; `R1 ⊑ ¬R2` iff some pair is in both.
//!
//! Nulls participate: a violation among invented witnesses still means no
//! model exists. Because the chase is depth-bounded, an unbounded-depth
//! violation could theoretically be missed; in DL-LiteR a violation is
//! witnessed within one existential step of the ABox (null types are fixed
//! by their generating axiom), so the default depth of 2 is exact.

use std::collections::HashSet;

use crate::abox::ABox;
use crate::axiom::Axiom;
use crate::chase::{chase, ChaseInstance};
use crate::tbox::TBox;
use crate::vocab::Vocabulary;

/// Depth sufficient to expose any DL-LiteR disjointness violation.
pub const CONSISTENCY_CHASE_DEPTH: u32 = 2;

/// A witnessed violation of a negative constraint.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violated axiom (always a negative inclusion).
    pub axiom: Axiom,
    /// Human-readable witness description.
    pub witness: String,
}

/// Check `⟨tbox, abox⟩` for consistency; return all violations found.
///
/// An empty result means the ABox is `T`-consistent.
pub fn check_consistency(voc: &Vocabulary, tbox: &TBox, abox: &ABox) -> Vec<Violation> {
    let inst = chase(tbox, abox, CONSISTENCY_CHASE_DEPTH);
    violations_in(voc, tbox, &inst)
}

/// Check an already-chased instance against the negative axioms of `tbox`.
pub fn violations_in(voc: &Vocabulary, tbox: &TBox, inst: &ChaseInstance) -> Vec<Violation> {
    let mut out = Vec::new();
    for ax in tbox.negative_axioms() {
        match ax {
            Axiom::Concept(ci) => {
                let left: HashSet<_> = inst.basic_concept_members(ci.lhs).into_iter().collect();
                if left.is_empty() {
                    continue;
                }
                for t in inst.basic_concept_members(ci.rhs) {
                    if left.contains(&t) {
                        out.push(Violation {
                            axiom: *ax,
                            witness: format!(
                                "{t:?} is in both {} and {}",
                                ci.lhs.display(voc),
                                ci.rhs.display(voc)
                            ),
                        });
                        break;
                    }
                }
            }
            Axiom::Role(ri) => {
                let left: HashSet<_> = inst.role_expr_pairs(ri.lhs).into_iter().collect();
                if left.is_empty() {
                    continue;
                }
                for p in inst.role_expr_pairs(ri.rhs) {
                    if left.contains(&p) {
                        out.push(Violation {
                            axiom: *ax,
                            witness: format!(
                                "{p:?} is in both {} and {}",
                                ri.lhs.display(voc),
                                ri.rhs.display(voc)
                            ),
                        });
                        break;
                    }
                }
            }
        }
    }
    out
}

/// `true` iff the KB has a model.
pub fn is_consistent(voc: &Vocabulary, tbox: &TBox, abox: &ABox) -> bool {
    check_consistency(voc, tbox, abox).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abox::example1_abox;
    use crate::tbox::{example1_tbox, TBoxBuilder};

    /// Example 1 / end of Example 2: the sample ABox is T-consistent.
    #[test]
    fn example1_is_consistent() {
        let (mut voc, tbox) = example1_tbox();
        let abox = example1_abox(&mut voc);
        assert!(is_consistent(&voc, &tbox, &abox));
    }

    /// Making Damian a supervisor violates (T7): PhD students cannot
    /// supervise anyone (Damian is a PhD student via (T6) + (A2)).
    #[test]
    fn phd_student_supervising_is_inconsistent() {
        let (mut voc, tbox) = example1_tbox();
        let mut abox = example1_abox(&mut voc);
        let sup = voc.find_role("supervisedBy").unwrap();
        let damian = voc.find_individual("Damian").unwrap();
        let alice = voc.individual("Alice");
        abox.assert_role(sup, alice, damian); // Damian supervises Alice.
        let violations = check_consistency(&voc, &tbox, &abox);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].axiom.is_negative());
    }

    #[test]
    fn negation_free_kb_is_always_consistent() {
        let mut b = TBoxBuilder::new();
        b.sub("A", "B").sub("B", "exists r").sub("exists r-", "A");
        let (mut voc, tbox) = b.finish();
        let a = voc.find_concept("A").unwrap();
        let x = voc.individual("x");
        let mut abox = ABox::new();
        abox.assert_concept(a, x);
        assert!(is_consistent(&voc, &tbox, &abox));
    }

    #[test]
    fn direct_concept_disjointness_violation() {
        let mut b = TBoxBuilder::new();
        b.disjoint("A", "B");
        let (mut voc, tbox) = b.finish();
        let a = voc.find_concept("A").unwrap();
        let bb = voc.find_concept("B").unwrap();
        let x = voc.individual("x");
        let mut abox = ABox::new();
        abox.assert_concept(a, x);
        abox.assert_concept(bb, x);
        assert!(!is_consistent(&voc, &tbox, &abox));
    }

    #[test]
    fn inferred_violation_through_hierarchy() {
        // A ⊑ B, B ⊑ ¬C, A(x), C(x): inconsistent only through inference.
        let mut b = TBoxBuilder::new();
        b.sub("A", "B").disjoint("B", "C");
        let (mut voc, tbox) = b.finish();
        let a = voc.find_concept("A").unwrap();
        let c = voc.find_concept("C").unwrap();
        let x = voc.individual("x");
        let mut abox = ABox::new();
        abox.assert_concept(a, x);
        abox.assert_concept(c, x);
        assert!(!is_consistent(&voc, &tbox, &abox));
    }

    #[test]
    fn role_disjointness_violation() {
        let mut b = TBoxBuilder::new();
        b.disjoint_role("r", "s");
        let (mut voc, tbox) = b.finish();
        let r = voc.find_role("r").unwrap();
        let s = voc.find_role("s").unwrap();
        let x = voc.individual("x");
        let y = voc.individual("y");
        let mut abox = ABox::new();
        abox.assert_role(r, x, y);
        abox.assert_role(s, x, y);
        assert!(!is_consistent(&voc, &tbox, &abox));
        // Different pair directions do not violate.
        let mut abox2 = ABox::new();
        abox2.assert_role(r, x, y);
        abox2.assert_role(s, y, x);
        assert!(is_consistent(&voc, &tbox, &abox2));
    }

    #[test]
    fn violation_with_null_witness() {
        // A ⊑ ∃r, ∃r⁻ ⊑ C, C ⊑ ¬D, D ⊑ ∃r⁻? Simpler: A ⊑ ∃r, ∃r ⊑ B,
        // B ⊑ ¬A: then A(x) gives x ∈ ∃r (null witness), so x ∈ B,
        // contradiction with A(x).
        let mut b = TBoxBuilder::new();
        b.sub("A", "exists r")
            .sub("exists r", "B")
            .disjoint("B", "A");
        let (mut voc, tbox) = b.finish();
        let a = voc.find_concept("A").unwrap();
        let x = voc.individual("x");
        let mut abox = ABox::new();
        abox.assert_concept(a, x);
        assert!(!is_consistent(&voc, &tbox, &abox));
    }
}
