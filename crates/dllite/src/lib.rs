//! # obda-dllite
//!
//! DL-LiteR knowledge bases: the ontology substrate of the cover-based
//! query answering framework (Bursztyn, Goasdoué, Manolescu, VLDB 2016).
//!
//! DL-LiteR is the description logic underpinning W3C's OWL2 QL. A
//! knowledge base `K = ⟨T, A⟩` couples a [`TBox`] (deductive constraints:
//! concept/role inclusions, possibly negated on the right-hand side) with
//! an [`ABox`] (explicit facts). This crate provides:
//!
//! * the vocabulary and expression model ([`Vocabulary`], [`BasicConcept`],
//!   [`Role`], [`Axiom`]) covering all 22 DL-LiteR constraint forms;
//! * predicate dependencies `dep(N)` (Definition 4 of the paper), the
//!   backbone of cover safety ([`Dependencies`]);
//! * TBox saturation and inclusion entailment ([`TBoxClosure`]);
//! * a bounded restricted chase ([`chase()`](chase::chase)) serving as the certain-answer
//!   oracle in tests;
//! * consistency checking against negative constraints
//!   ([`check_consistency`]);
//! * a small text format for KBs ([`parse_kb`]).

pub mod abox;
pub mod axiom;
pub mod bitset;
pub mod chase;
pub mod consistency;
pub mod constraints;
pub mod delta;
pub mod deps;
pub mod expr;
pub mod ids;
pub mod kb;
pub mod parser;
pub mod saturation;
pub mod tbox;
pub mod txn;
pub mod vocab;

pub use abox::{example1_abox, ABox};
pub use axiom::{Axiom, ConceptInclusion, RoleInclusion};
pub use bitset::BitSet;
pub use chase::{chase, ChaseFact, ChaseInstance, ChaseTerm};
pub use consistency::{check_consistency, is_consistent, Violation};
pub use constraints::{ConstraintSet, Extents, MiningStats};
pub use delta::AboxDelta;
pub use deps::Dependencies;
pub use expr::{BasicConcept, Role};
pub use ids::{ConceptId, IndividualId, PredId, RoleId};
pub use kb::KnowledgeBase;
pub use parser::{parse_kb, ParseError, ParsedKb};
pub use saturation::TBoxClosure;
pub use tbox::{example1_tbox, example7_tbox, TBox, TBoxBuilder};
pub use txn::WorkingSet;
pub use vocab::Vocabulary;
