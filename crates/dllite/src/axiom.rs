//! DL-LiteR TBox axioms.
//!
//! Per §2.1 a DL-LiteR TBox constraint is either
//!
//! * a concept inclusion `C1 ⊑ C2` or `C1 ⊑ ¬C2` with `C1`, `C2` basic
//!   concepts (atomic or `∃R`, `R ∈ N±R`), or
//! * a role inclusion `R1 ⊑ R2` or `R1 ⊑ ¬R2` with `R1, R2 ∈ N±R`.
//!
//! Negation may appear only on the right-hand side; negative inclusions
//! (disjointness constraints) never participate in query reformulation but
//! are checked by [`crate::consistency`].

use std::fmt;

use crate::expr::{BasicConcept, Role};
use crate::vocab::Vocabulary;

/// Positive or negative concept inclusion.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ConceptInclusion {
    pub lhs: BasicConcept,
    pub rhs: BasicConcept,
    /// `true` for `lhs ⊑ ¬rhs` (disjointness).
    pub negated: bool,
}

/// Positive or negative role inclusion.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RoleInclusion {
    pub lhs: Role,
    pub rhs: Role,
    /// `true` for `lhs ⊑ ¬rhs` (role disjointness).
    pub negated: bool,
}

/// A DL-LiteR TBox axiom.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Axiom {
    Concept(ConceptInclusion),
    Role(RoleInclusion),
}

impl Axiom {
    /// Positive concept inclusion `lhs ⊑ rhs`.
    pub fn concept(lhs: BasicConcept, rhs: BasicConcept) -> Self {
        Axiom::Concept(ConceptInclusion {
            lhs,
            rhs,
            negated: false,
        })
    }

    /// Negative concept inclusion `lhs ⊑ ¬rhs`.
    pub fn concept_neg(lhs: BasicConcept, rhs: BasicConcept) -> Self {
        Axiom::Concept(ConceptInclusion {
            lhs,
            rhs,
            negated: true,
        })
    }

    /// Positive role inclusion `lhs ⊑ rhs`.
    pub fn role(lhs: Role, rhs: Role) -> Self {
        Axiom::Role(RoleInclusion {
            lhs,
            rhs,
            negated: false,
        })
    }

    /// Negative role inclusion `lhs ⊑ ¬rhs`.
    pub fn role_neg(lhs: Role, rhs: Role) -> Self {
        Axiom::Role(RoleInclusion {
            lhs,
            rhs,
            negated: true,
        })
    }

    pub fn is_negative(&self) -> bool {
        match self {
            Axiom::Concept(ci) => ci.negated,
            Axiom::Role(ri) => ri.negated,
        }
    }

    pub fn is_positive(&self) -> bool {
        !self.is_negative()
    }

    /// Does the axiom's RHS introduce an existential witness when read as a
    /// forward rule — i.e. is it of FOL form 2/3/6/7/8/9 of Table 3?
    pub fn is_existential(&self) -> bool {
        matches!(
            self,
            Axiom::Concept(ConceptInclusion {
                rhs: BasicConcept::Exists(_),
                negated: false,
                ..
            })
        )
    }

    /// Normalize a role inclusion so that the right-hand side is a direct
    /// (non-inverse) role: `R⁻ ⊑ S⁻` is the same constraint as `R ⊑ S`
    /// (Table 3, rows 10–11). Concept inclusions are returned unchanged.
    ///
    /// Normalization makes syntactic deduplication in
    /// [`crate::tbox::TBox::add`] and axiom-applicability indexing simpler:
    /// every role inclusion is stored with `rhs.inverse == false`.
    pub fn normalized(self) -> Self {
        match self {
            Axiom::Role(ri) if ri.rhs.inverse => Axiom::Role(RoleInclusion {
                lhs: ri.lhs.inverted(),
                rhs: ri.rhs.inverted(),
                negated: ri.negated,
            }),
            other => other,
        }
    }

    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Axiom, &'a Vocabulary);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self.0 {
                    Axiom::Concept(ci) => {
                        write!(f, "{} <= ", ci.lhs.display(self.1))?;
                        if ci.negated {
                            write!(f, "not ")?;
                        }
                        write!(f, "{}", ci.rhs.display(self.1))
                    }
                    Axiom::Role(ri) => {
                        write!(f, "{} <= ", ri.lhs.display(self.1))?;
                        if ri.negated {
                            write!(f, "not ")?;
                        }
                        write!(f, "{}", ri.rhs.display(self.1))
                    }
                }
            }
        }
        D(self, voc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ConceptId, RoleId};

    fn a() -> BasicConcept {
        BasicConcept::Atomic(ConceptId(0))
    }
    fn r() -> Role {
        Role::direct(RoleId(0))
    }
    fn s() -> Role {
        Role::direct(RoleId(1))
    }

    #[test]
    fn polarity_flags() {
        assert!(Axiom::concept(a(), a()).is_positive());
        assert!(Axiom::concept_neg(a(), a()).is_negative());
        assert!(Axiom::role(r(), s()).is_positive());
        assert!(Axiom::role_neg(r(), s()).is_negative());
    }

    #[test]
    fn existential_detection() {
        assert!(Axiom::concept(a(), BasicConcept::Exists(r())).is_existential());
        assert!(!Axiom::concept(BasicConcept::Exists(r()), a()).is_existential());
        assert!(!Axiom::concept_neg(a(), BasicConcept::Exists(r())).is_existential());
        assert!(!Axiom::role(r(), s()).is_existential());
    }

    #[test]
    fn role_inclusion_normalization() {
        // R⁻ ⊑ S⁻ normalizes to R ⊑ S (Table 3 row 11 lists them as equal).
        let ax = Axiom::role(r().inverted(), s().inverted()).normalized();
        assert_eq!(ax, Axiom::role(r(), s()));
        // R ⊑ S⁻ normalizes to R⁻ ⊑ S (row 10).
        let ax = Axiom::role(r(), s().inverted()).normalized();
        assert_eq!(ax, Axiom::role(r().inverted(), s()));
        // Already-normal axioms are unchanged.
        let ax = Axiom::role(r().inverted(), s());
        assert_eq!(ax.normalized(), ax);
    }

    #[test]
    fn concept_axioms_unchanged_by_normalization() {
        let ax = Axiom::concept(a(), BasicConcept::Exists(r().inverted()));
        assert_eq!(ax.normalized(), ax);
    }
}
