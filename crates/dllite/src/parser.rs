//! A small text format for DL-LiteR knowledge bases.
//!
//! Grammar (line oriented; `#` starts a comment; blank lines ignored):
//!
//! ```text
//! # concept inclusions — sides are `Name`, `exists role`, `exists role-`
//! PhDStudent <= Researcher
//! exists supervisedBy <= PhDStudent
//! PhDStudent <= not exists supervisedBy-
//!
//! # role inclusions — prefixed with `role`; sides are `name` or `name-`
//! role supervisedBy <= worksWith
//! role worksWith <= worksWith-
//! role r <= not s
//!
//! # facts
//! PhDStudent(Damian)
//! worksWith(Ioana, Francois)
//! ```
//!
//! The `role` keyword removes the ambiguity between `A <= B` as a concept
//! vs role inclusion. Assertion arity decides concept vs role facts.

use std::fmt;

use crate::abox::ABox;
use crate::axiom::Axiom;
use crate::expr::{BasicConcept, Role};
use crate::tbox::TBox;
use crate::vocab::Vocabulary;

/// A parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result of parsing a KB document.
#[derive(Debug, Default)]
pub struct ParsedKb {
    pub voc: Vocabulary,
    pub tbox: TBox,
    pub abox: ABox,
}

/// Parse a whole KB document.
pub fn parse_kb(input: &str) -> Result<ParsedKb, ParseError> {
    let mut kb = ParsedKb::default();
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        parse_line(line, line_no, &mut kb)?;
    }
    Ok(kb)
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn parse_line(line: &str, line_no: usize, kb: &mut ParsedKb) -> Result<(), ParseError> {
    let err = |message: String| ParseError {
        line: line_no,
        message,
    };

    if let Some(rest) = line.strip_prefix("role ") {
        // Role inclusion.
        let (lhs, rhs, negated) = split_inclusion(rest)
            .ok_or_else(|| err(format!("expected `r <= s` after `role`, got `{rest}`")))?;
        let l = parse_role_expr(lhs, &mut kb.voc)
            .ok_or_else(|| err(format!("bad role expression `{lhs}`")))?;
        let r = parse_role_expr(rhs, &mut kb.voc)
            .ok_or_else(|| err(format!("bad role expression `{rhs}`")))?;
        let ax = if negated {
            Axiom::role_neg(l, r)
        } else {
            Axiom::role(l, r)
        };
        kb.tbox.add(ax);
        return Ok(());
    }

    if line.contains("<=") {
        // Concept inclusion.
        let (lhs, rhs, negated) =
            split_inclusion(line).ok_or_else(|| err(format!("malformed inclusion `{line}`")))?;
        let l = parse_basic_concept(lhs, &mut kb.voc)
            .ok_or_else(|| err(format!("bad concept expression `{lhs}`")))?;
        let r = parse_basic_concept(rhs, &mut kb.voc)
            .ok_or_else(|| err(format!("bad concept expression `{rhs}`")))?;
        let ax = if negated {
            Axiom::concept_neg(l, r)
        } else {
            Axiom::concept(l, r)
        };
        kb.tbox.add(ax);
        return Ok(());
    }

    // Otherwise: an assertion `Pred(args)`.
    let open = line
        .find('(')
        .ok_or_else(|| err(format!("unrecognized line `{line}`")))?;
    if !line.ends_with(')') {
        return Err(err(format!("assertion must end with `)`: `{line}`")));
    }
    let pred = line[..open].trim();
    if pred.is_empty() || !is_identifier(pred) {
        return Err(err(format!("bad predicate name `{pred}`")));
    }
    let args_str = &line[open + 1..line.len() - 1];
    let args: Vec<&str> = args_str.split(',').map(str::trim).collect();
    match args.as_slice() {
        [a] if is_identifier(a) => {
            let c = kb.voc.concept(pred);
            let i = kb.voc.individual(a);
            kb.abox.assert_concept(c, i);
            Ok(())
        }
        [a, b] if is_identifier(a) && is_identifier(b) => {
            let r = kb.voc.role(pred);
            let ia = kb.voc.individual(a);
            let ib = kb.voc.individual(b);
            kb.abox.assert_role(r, ia, ib);
            Ok(())
        }
        _ => Err(err(format!("bad assertion arguments `{args_str}`"))),
    }
}

/// Split `lhs <= [not] rhs`; returns (lhs, rhs, negated).
fn split_inclusion(s: &str) -> Option<(&str, &str, bool)> {
    let (lhs, rhs) = s.split_once("<=")?;
    let lhs = lhs.trim();
    let rhs = rhs.trim();
    if lhs.is_empty() || rhs.is_empty() {
        return None;
    }
    match rhs.strip_prefix("not ") {
        Some(r) => Some((lhs, r.trim(), true)),
        None => Some((lhs, rhs, false)),
    }
}

/// `name` or `name-`.
fn parse_role_expr(s: &str, voc: &mut Vocabulary) -> Option<Role> {
    let s = s.trim();
    let (name, inverse) = match s.strip_suffix('-') {
        Some(n) => (n, true),
        None => (s, false),
    };
    if !is_identifier(name) {
        return None;
    }
    let id = voc.role(name);
    Some(Role { name: id, inverse })
}

/// `Name`, `exists role`, or `exists role-`.
fn parse_basic_concept(s: &str, voc: &mut Vocabulary) -> Option<BasicConcept> {
    let s = s.trim();
    if let Some(role_part) = s.strip_prefix("exists ") {
        return parse_role_expr(role_part, voc).map(BasicConcept::Exists);
    }
    if !is_identifier(s) {
        return None;
    }
    Some(BasicConcept::Atomic(voc.concept(s)))
}

fn is_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '\'')
        && s.chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tbox::example1_tbox;

    const EXAMPLE1: &str = r#"
# Table 2 of the paper
PhDStudent <= Researcher                     # (T1)
exists worksWith <= Researcher               # (T2)
exists worksWith- <= Researcher              # (T3)
role worksWith <= worksWith-                 # (T4)
role supervisedBy <= worksWith               # (T5)
exists supervisedBy <= PhDStudent            # (T6)
PhDStudent <= not exists supervisedBy-       # (T7)

worksWith(Ioana, Francois)                   # (A1)
supervisedBy(Damian, Ioana)                  # (A2)
supervisedBy(Damian, Francois)               # (A3)
"#;

    #[test]
    fn parses_example1_document() {
        let kb = parse_kb(EXAMPLE1).expect("parse");
        assert_eq!(kb.tbox.len(), 7);
        assert_eq!(kb.abox.len(), 3);
        assert_eq!(kb.voc.num_concepts(), 2);
        assert_eq!(kb.voc.num_roles(), 2);
        assert_eq!(kb.voc.num_individuals(), 3);
    }

    #[test]
    fn parsed_tbox_matches_builder_tbox() {
        let kb = parse_kb(EXAMPLE1).expect("parse");
        let (_, built) = example1_tbox();
        // Same axiom multiset (both normalized, insertion order equal).
        assert_eq!(kb.tbox.axioms().len(), built.axioms().len());
        for ax in built.axioms() {
            assert!(kb.tbox.contains(ax), "missing {ax:?}");
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "PhDStudent <=",
            "<= Researcher",
            "role r <=",
            "worksWith(a, b",
            "worksWith(a, b, c)",
            "1Bad(a)",
            "noise noise",
            "A(a,)",
        ] {
            let res = parse_kb(bad);
            assert!(res.is_err(), "expected failure on `{bad}`");
        }
    }

    #[test]
    fn error_reports_line_number() {
        let doc = "A <= B\nbroken line here\n";
        let err = parse_kb(doc).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn negated_role_inclusion_parses() {
        let kb = parse_kb("role r <= not s").unwrap();
        assert_eq!(kb.tbox.num_negative(), 1);
    }

    #[test]
    fn assertion_arity_disambiguates_namespaces() {
        let kb = parse_kb("P(a)\nP(a, b)").unwrap();
        // `P` is interned both as concept (arity 1) and role (arity 2).
        assert!(kb.voc.find_concept("P").is_some());
        assert!(kb.voc.find_role("P").is_some());
        assert_eq!(kb.abox.concept_assertions().len(), 1);
        assert_eq!(kb.abox.role_assertions().len(), 1);
    }

    #[test]
    fn whitespace_and_comments_are_tolerated() {
        let kb = parse_kb("   \n# only a comment\n  A <= B  # trailing\n").unwrap();
        assert_eq!(kb.tbox.len(), 1);
    }
}
