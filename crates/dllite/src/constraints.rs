//! ABox completeness constraints: data-level extent inclusions mined per
//! snapshot generation, used to prune UCQ/JUCQ reformulations.
//!
//! Following Hovland et al., "OBDA Constraints for Effective Query
//! Answering" (arXiv 1605.04263): a DL-LiteR reformulation compensates
//! for *incomplete* data by unioning every TBox-entailed specialization
//! of every atom. When the stored data happens to be complete for a pair
//! of predicates — every `C'`-member is already asserted as `C`, or a
//! role's pairs are already present under a super-role — the
//! specialized union arms retrieve nothing new and can be dropped
//! *before* SQL generation. Likewise, arms over predicates with empty
//! extents retrieve nothing at all.
//!
//! A [`ConstraintSet`] is a set of facts about one concrete ABox
//! snapshot:
//!
//! * **emptiness** — predicate `p` has no facts;
//! * **unary inclusions** — `ext(b1) ⊆ ext(b2)` between basic-concept
//!   extents, where `ext(A)` is the asserted members of `A`,
//!   `ext(∃R)` the asserted subjects of `R`, and `ext(∃R⁻)` its
//!   asserted objects;
//! * **role inclusions** — `pairs(R1) ⊆ pairs(R2)` between role
//!   expressions (inverses swap the pair).
//!
//! Candidate pairs are taken from the [`TBoxClosure`]: PerfectRef only
//! specializes atoms along entailed inclusions, so those are the only
//! pairs a pruner ever consults. Both directions of each closure edge
//! are tested — the *completeness* direction (`ext(sub) ⊆ ext(sup)`,
//! i.e. the data already asserts the general predicate) is the one that
//! licenses dropping specialized arms.
//!
//! Constraints are true of exactly one generation. Callers must re-mine
//! (or [`ConstraintSet::holds_on`]-validate) after any write; the
//! serving layer does this structurally by caching the set on the
//! per-generation engine snapshot.

use std::collections::{HashMap, HashSet};

use crate::abox::ABox;
use crate::expr::{BasicConcept, Role};
use crate::ids::{ConceptId, PredId, RoleId};
use crate::saturation::TBoxClosure;
use crate::tbox::TBox;

/// Materialized per-predicate extents of one ABox snapshot — the input
/// to constraint mining. Built in one pass from an [`ABox`], or by a
/// storage layout scanning its own tables.
#[derive(Debug, Default, Clone)]
pub struct Extents {
    pub concepts: HashMap<ConceptId, HashSet<u32>>,
    pub roles: HashMap<RoleId, HashSet<(u32, u32)>>,
}

impl Extents {
    pub fn from_abox(abox: &ABox) -> Self {
        let mut e = Extents::default();
        for &(c, a) in abox.concept_assertions() {
            e.concepts.entry(c).or_default().insert(a.0);
        }
        for &(r, a, b) in abox.role_assertions() {
            e.roles.entry(r).or_default().insert((a.0, b.0));
        }
        e
    }

    fn pred_is_empty(&self, p: PredId) -> bool {
        match p {
            PredId::Concept(c) => self.concepts.get(&c).is_none_or(HashSet::is_empty),
            PredId::Role(r) => self.roles.get(&r).is_none_or(HashSet::is_empty),
        }
    }
}

/// Lazily materialized unary extents (`ext(A)`, `ext(∃R)`, `ext(∃R⁻)`)
/// over an [`Extents`], shared across all closure-pair checks of one
/// mining run.
struct UnaryCache<'a> {
    ext: &'a Extents,
    cache: HashMap<BasicConcept, HashSet<u32>>,
}

impl<'a> UnaryCache<'a> {
    fn new(ext: &'a Extents) -> Self {
        UnaryCache {
            ext,
            cache: HashMap::new(),
        }
    }

    fn get(&mut self, b: BasicConcept) -> &HashSet<u32> {
        self.cache.entry(b).or_insert_with(|| match b {
            BasicConcept::Atomic(c) => self.ext.concepts.get(&c).cloned().unwrap_or_default(),
            BasicConcept::Exists(r) => {
                let pairs = self.ext.roles.get(&r.name);
                pairs
                    .map(|ps| {
                        ps.iter()
                            .map(|&(s, o)| if r.inverse { o } else { s })
                            .collect()
                    })
                    .unwrap_or_default()
            }
        })
    }

    /// `ext(sub) ⊆ ext(sup)` on this snapshot?
    fn included(&mut self, sub: BasicConcept, sup: BasicConcept) -> bool {
        let s = self.get(sub).clone();
        let p = self.get(sup);
        s.iter().all(|x| p.contains(x))
    }
}

/// `pairs(sub) ⊆ pairs(sup)` over role expressions (inverse swaps).
fn role_ext_included(ext: &Extents, sub: Role, sup: Role) -> bool {
    let empty = HashSet::new();
    let subs = ext.roles.get(&sub.name).unwrap_or(&empty);
    let sups = ext.roles.get(&sup.name).unwrap_or(&empty);
    subs.iter().all(|&(a, b)| {
        let (a, b) = if sub.inverse { (b, a) } else { (a, b) };
        let key = if sup.inverse { (b, a) } else { (a, b) };
        sups.contains(&key)
    })
}

/// Summary counters from one mining run (surfaced by EXPLAIN and the
/// benches).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MiningStats {
    /// Closure pairs whose extents were compared (each direction counts).
    pub pairs_checked: usize,
    /// Predicates found empty.
    pub empty_preds: usize,
    /// Unary extent inclusions found to hold.
    pub unary_inclusions: usize,
    /// Role pair inclusions found to hold.
    pub role_inclusions: usize,
}

/// Completeness/exactness constraints of one ABox snapshot.
#[derive(Debug, Default, Clone)]
pub struct ConstraintSet {
    empty: HashSet<PredId>,
    /// `(b1, b2)` means `ext(b1) ⊆ ext(b2)` on the mined snapshot.
    unary: HashSet<(BasicConcept, BasicConcept)>,
    /// `(r1, r2)` means `pairs(r1) ⊆ pairs(r2)` on the mined snapshot
    /// (stored in both orientations, like the closure).
    roles: HashSet<(Role, Role)>,
    stats: MiningStats,
}

impl ConstraintSet {
    /// Mine constraints from materialized extents, guided by the TBox
    /// closure: only entailed inclusion pairs are compared (both
    /// directions), because those are the only edges along which
    /// PerfectRef specializes atoms.
    pub fn mine(closure: &TBoxClosure, ext: &Extents) -> Self {
        let mut set = ConstraintSet::default();
        let mut preds: HashSet<PredId> = HashSet::new();
        for (b1, b2) in closure.positive_concept_inclusions() {
            preds.insert(b1.cr());
            preds.insert(b2.cr());
        }
        for (r1, r2) in closure.positive_role_inclusions() {
            preds.insert(PredId::Role(r1.name));
            preds.insert(PredId::Role(r2.name));
        }
        // Emptiness across everything the snapshot knows about, plus
        // every predicate the closure mentions (a predicate with no
        // extent entry is empty too).
        preds.extend(ext.concepts.keys().map(|&c| PredId::Concept(c)));
        preds.extend(ext.roles.keys().map(|&r| PredId::Role(r)));
        for p in preds {
            if ext.pred_is_empty(p) {
                set.empty.insert(p);
            }
        }

        let mut unary = UnaryCache::new(ext);
        for (b1, b2) in closure.positive_concept_inclusions() {
            for (sub, sup) in [(b1, b2), (b2, b1)] {
                set.stats.pairs_checked += 1;
                if unary.included(sub, sup) {
                    set.unary.insert((sub, sup));
                }
            }
        }
        for (r1, r2) in closure.positive_role_inclusions() {
            for (sub, sup) in [(r1, r2), (r2, r1)] {
                set.stats.pairs_checked += 1;
                if role_ext_included(ext, sub, sup) {
                    // Store both orientations so lookups need no
                    // normalization: pairs(r1) ⊆ pairs(r2) iff
                    // pairs(r1⁻) ⊆ pairs(r2⁻).
                    set.roles.insert((sub, sup));
                    set.roles.insert((sub.inverted(), sup.inverted()));
                }
            }
        }
        set.stats.empty_preds = set.empty.len();
        set.stats.unary_inclusions = set.unary.len();
        set.stats.role_inclusions = set.roles.len();
        set
    }

    /// Convenience: saturate `tbox` and mine straight from an ABox.
    pub fn mine_from_abox(tbox: &TBox, abox: &ABox) -> Self {
        Self::mine(&TBoxClosure::compute(tbox), &Extents::from_abox(abox))
    }

    /// Does predicate `p` have an empty extent on the mined snapshot?
    pub fn pred_is_empty(&self, p: PredId) -> bool {
        self.empty.contains(&p)
    }

    /// `ext(sub) ⊆ ext(sup)` on the mined snapshot? Reflexivity included,
    /// so the plain (constraint-free) homomorphism is a special case.
    pub fn unary_included(&self, sub: BasicConcept, sup: BasicConcept) -> bool {
        sub == sup || self.unary.contains(&(sub, sup))
    }

    /// `pairs(sub) ⊆ pairs(sup)` on the mined snapshot? Reflexivity
    /// included.
    pub fn role_included(&self, sub: Role, sup: Role) -> bool {
        sub == sup || self.roles.contains(&(sub, sup))
    }

    pub fn stats(&self) -> MiningStats {
        self.stats
    }

    /// Total mined facts (emptiness + inclusions) — a cheap size gauge
    /// for EXPLAIN and logs.
    pub fn len(&self) -> usize {
        self.empty.len() + self.unary.len() + self.roles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Re-validate every mined constraint against `abox`. `true` iff all
    /// still hold. The mutation/property suites call this to prove that
    /// a write which breaks a constraint really is detected (and hence
    /// that serving a stale set would have been unsound — the serving
    /// layer prevents it by construction, re-mining per generation).
    pub fn holds_on(&self, abox: &ABox) -> bool {
        let ext = Extents::from_abox(abox);
        if self.empty.iter().any(|&p| !ext.pred_is_empty(p)) {
            return false;
        }
        let mut unary = UnaryCache::new(&ext);
        if !self
            .unary
            .iter()
            .all(|&(sub, sup)| unary.included(sub, sup))
        {
            return false;
        }
        self.roles
            .iter()
            .all(|&(sub, sup)| role_ext_included(&ext, sub, sup))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tbox::TBoxBuilder;
    use crate::vocab::Vocabulary;

    fn fixture() -> (Vocabulary, TBox, ABox) {
        let mut b = TBoxBuilder::new();
        b.sub("PhDStudent", "Student")
            .sub("Student", "Person")
            .sub("exists advises", "Professor")
            .sub("Professor", "Person")
            .sub_role("headOf", "worksFor");
        let (mut voc, tbox) = b.finish();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let student = voc.find_concept("Student").unwrap();
        let prof = voc.find_concept("Professor").unwrap();
        let advises = voc.find_role("advises").unwrap();
        let head = voc.find_role("headOf").unwrap();
        let works = voc.find_role("worksFor").unwrap();
        let a = voc.individual("a");
        let b_ = voc.individual("b");
        let c = voc.individual("c");
        let mut abox = ABox::new();
        // Complete: every PhDStudent is also asserted a Student.
        abox.assert_concept(phd, a);
        abox.assert_concept(student, a);
        abox.assert_concept(student, b_);
        // Complete: every advises subject is asserted a Professor.
        abox.assert_role(advises, c, a);
        abox.assert_concept(prof, c);
        // Complete: every headOf pair is also a worksFor pair.
        abox.assert_role(head, c, a);
        abox.assert_role(works, c, a);
        abox.assert_role(works, b_, a);
        (voc, tbox, abox)
    }

    #[test]
    fn mines_emptiness_and_inclusions() {
        let (voc, tbox, abox) = fixture();
        let cons = ConstraintSet::mine_from_abox(&tbox, &abox);
        let person = voc.find_concept("Person").unwrap();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let student = voc.find_concept("Student").unwrap();
        let prof = voc.find_concept("Professor").unwrap();
        let advises = voc.find_role("advises").unwrap();
        let head = voc.find_role("headOf").unwrap();
        let works = voc.find_role("worksFor").unwrap();
        // Person has no assertions at all.
        assert!(cons.pred_is_empty(PredId::Concept(person)));
        assert!(!cons.pred_is_empty(PredId::Concept(student)));
        // ext(PhDStudent) ⊆ ext(Student) but not conversely.
        assert!(cons.unary_included(BasicConcept::Atomic(phd), BasicConcept::Atomic(student)));
        assert!(!cons.unary_included(BasicConcept::Atomic(student), BasicConcept::Atomic(phd)));
        // ext(∃advises) ⊆ ext(Professor).
        assert!(cons.unary_included(
            BasicConcept::Exists(Role::direct(advises)),
            BasicConcept::Atomic(prof)
        ));
        // pairs(headOf) ⊆ pairs(worksFor), in both orientations.
        assert!(cons.role_included(Role::direct(head), Role::direct(works)));
        assert!(cons.role_included(Role::inv(head), Role::inv(works)));
        assert!(!cons.role_included(Role::direct(works), Role::direct(head)));
        // Reflexivity.
        assert!(cons.unary_included(BasicConcept::Atomic(phd), BasicConcept::Atomic(phd)));
        assert!(cons.role_included(Role::direct(head), Role::direct(head)));
        assert!(cons.len() > 0);
    }

    #[test]
    fn closure_guidance_only_compares_entailed_pairs() {
        // Student and Professor are not related by the TBox, so even if
        // their extents coincided, no inclusion would be mined.
        let mut b = TBoxBuilder::new();
        b.sub("Student", "Person").sub("Professor", "Person");
        let (mut voc, tbox) = b.finish();
        let student = voc.find_concept("Student").unwrap();
        let prof = voc.find_concept("Professor").unwrap();
        let x = voc.individual("x");
        let mut abox = ABox::new();
        abox.assert_concept(student, x);
        abox.assert_concept(prof, x);
        let cons = ConstraintSet::mine_from_abox(&tbox, &abox);
        assert!(!cons.unary_included(BasicConcept::Atomic(student), BasicConcept::Atomic(prof)));
    }

    #[test]
    fn holds_on_detects_broken_constraints() {
        let (mut voc, tbox, abox) = fixture();
        let cons = ConstraintSet::mine_from_abox(&tbox, &abox);
        assert!(cons.holds_on(&abox), "constraints hold where mined");

        // Break the PhDStudent ⊆ Student completeness.
        let phd = voc.find_concept("PhDStudent").unwrap();
        let fresh = voc.individual("fresh");
        let mut broken = abox.clone();
        broken.assert_concept(phd, fresh);
        assert!(!cons.holds_on(&broken), "new PhD without Student breaks it");

        // Break an emptiness constraint.
        let person = voc.find_concept("Person").unwrap();
        let mut broken2 = abox.clone();
        broken2.assert_concept(person, fresh);
        assert!(!cons.holds_on(&broken2), "Person is no longer empty");

        // A harmless write keeps everything valid.
        let student = voc.find_concept("Student").unwrap();
        let mut fine = abox.clone();
        fine.assert_concept(student, fresh);
        assert!(cons.holds_on(&fine));
    }

    #[test]
    fn deletion_can_break_inclusions() {
        let (mut voc, tbox, abox) = fixture();
        let cons = ConstraintSet::mine_from_abox(&tbox, &abox);
        let student = voc.find_concept("Student").unwrap();
        let a = voc.individual("a");
        let mut broken = abox.clone();
        // Removing Student(a) leaves PhDStudent(a) uncovered.
        broken.retract_concept(student, a);
        assert!(!cons.holds_on(&broken));
    }
}
