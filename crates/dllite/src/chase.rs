//! A bounded restricted chase for DL-LiteR.
//!
//! The chase materializes the consequences of the positive TBox axioms over
//! an ABox, inventing *labeled nulls* as witnesses of existential axioms
//! (`A ⊑ ∃R`). For DL-LiteR the restricted chase (fire an existential rule
//! only when its conclusion is not yet satisfied) yields a universal model;
//! evaluating a CQ over it and keeping the all-constant answer tuples gives
//! exactly the certain answers.
//!
//! The chase of a DL-LiteR KB can be infinite (cyclic existential axioms
//! such as `∃R⁻ ⊑ ∃R`), so we bound the *generation depth* of nulls. By the
//! locality of canonical models, a CQ with `n` atoms can only "see" nulls at
//! distance ≤ `n` from the ABox individuals, hence depth `n + 1` suffices
//! for certain-answer computation — this is what the certain-answer
//! evaluator in `obda-query` relies on.
//!
//! This module is the *testing oracle* of the workspace: reformulation-based
//! query answering (the paper's route) is validated against it in property
//! tests. It is not meant to scale; the RDBMS substrate is the scalable
//! path.

use std::collections::{HashMap, HashSet};

use crate::abox::ABox;
use crate::axiom::Axiom;
use crate::expr::{BasicConcept, Role};
use crate::ids::{ConceptId, IndividualId, RoleId};
use crate::tbox::TBox;

/// A term of the chased instance: a database constant or a labeled null.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum ChaseTerm {
    Const(IndividualId),
    Null(u32),
}

impl ChaseTerm {
    pub fn is_const(self) -> bool {
        matches!(self, ChaseTerm::Const(_))
    }
}

/// A fact of the chased instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ChaseFact {
    Concept(ConceptId, ChaseTerm),
    Role(RoleId, ChaseTerm, ChaseTerm),
}

/// Result of chasing an ABox: the saturated fact set with lookup indexes.
#[derive(Debug, Default)]
pub struct ChaseInstance {
    facts: HashSet<ChaseFact>,
    by_concept: HashMap<ConceptId, Vec<ChaseTerm>>,
    by_role: HashMap<RoleId, Vec<(ChaseTerm, ChaseTerm)>>,
    /// Generation depth of each null (constants are depth 0).
    null_depth: Vec<u32>,
    /// True if the depth bound stopped at least one existential rule, i.e.
    /// the returned instance is a truncation of the full (infinite) chase.
    truncated: bool,
}

impl ChaseInstance {
    fn add(&mut self, fact: ChaseFact) -> bool {
        if !self.facts.insert(fact) {
            return false;
        }
        match fact {
            ChaseFact::Concept(c, t) => self.by_concept.entry(c).or_default().push(t),
            ChaseFact::Role(r, a, b) => self.by_role.entry(r).or_default().push((a, b)),
        }
        true
    }

    pub fn contains(&self, fact: &ChaseFact) -> bool {
        self.facts.contains(fact)
    }

    pub fn num_facts(&self) -> usize {
        self.facts.len()
    }

    pub fn num_nulls(&self) -> usize {
        self.null_depth.len()
    }

    /// Whether the depth bound truncated the chase.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    pub fn concept_members(&self, c: ConceptId) -> &[ChaseTerm] {
        self.by_concept.get(&c).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn role_pairs(&self, r: RoleId) -> &[(ChaseTerm, ChaseTerm)] {
        self.by_role.get(&r).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Members of a basic concept (`A`, `∃R`, or `∃R⁻`) in this instance.
    pub fn basic_concept_members(&self, b: BasicConcept) -> Vec<ChaseTerm> {
        match b {
            BasicConcept::Atomic(c) => self.concept_members(c).to_vec(),
            BasicConcept::Exists(role) => {
                let pairs = self.role_pairs(role.name);
                let mut v: Vec<ChaseTerm> = if role.inverse {
                    pairs.iter().map(|&(_, b)| b).collect()
                } else {
                    pairs.iter().map(|&(a, _)| a).collect()
                };
                v.sort_unstable();
                v.dedup();
                v
            }
        }
    }

    /// Pairs of a role expression (`R` or `R⁻`) in this instance.
    pub fn role_expr_pairs(&self, role: Role) -> Vec<(ChaseTerm, ChaseTerm)> {
        let pairs = self.role_pairs(role.name);
        if role.inverse {
            pairs.iter().map(|&(a, b)| (b, a)).collect()
        } else {
            pairs.to_vec()
        }
    }

    fn depth(&self, t: ChaseTerm) -> u32 {
        match t {
            ChaseTerm::Const(_) => 0,
            ChaseTerm::Null(n) => self.null_depth[n as usize],
        }
    }

    fn fresh_null(&mut self, depth: u32) -> ChaseTerm {
        let id = self.null_depth.len() as u32;
        self.null_depth.push(depth);
        ChaseTerm::Null(id)
    }
}

/// Run the bounded restricted chase of `abox` under the positive axioms of
/// `tbox`, inventing nulls up to generation depth `max_depth`.
///
/// `max_depth == 0` applies only null-free rules (plain saturation of the
/// explicit facts).
pub fn chase(tbox: &TBox, abox: &ABox, max_depth: u32) -> ChaseInstance {
    let mut inst = ChaseInstance::default();
    let mut agenda: Vec<ChaseFact> = Vec::new();
    for &(c, i) in abox.concept_assertions() {
        let f = ChaseFact::Concept(c, ChaseTerm::Const(i));
        if inst.add(f) {
            agenda.push(f);
        }
    }
    for &(r, a, b) in abox.role_assertions() {
        let f = ChaseFact::Role(r, ChaseTerm::Const(a), ChaseTerm::Const(b));
        if inst.add(f) {
            agenda.push(f);
        }
    }

    // Group positive axioms by the name of their LHS so each new fact only
    // triggers the relevant rules.
    let mut concept_rules: HashMap<ConceptId, Vec<&Axiom>> = HashMap::new();
    let mut role_rules: HashMap<RoleId, Vec<&Axiom>> = HashMap::new();
    for ax in tbox.positive_axioms() {
        match ax {
            Axiom::Concept(ci) => match ci.lhs {
                BasicConcept::Atomic(c) => concept_rules.entry(c).or_default().push(ax),
                BasicConcept::Exists(r) => role_rules.entry(r.name).or_default().push(ax),
            },
            Axiom::Role(ri) => role_rules.entry(ri.lhs.name).or_default().push(ax),
        }
    }

    while let Some(fact) = agenda.pop() {
        let rules: &[&Axiom] = match fact {
            ChaseFact::Concept(c, _) => concept_rules.get(&c).map(Vec::as_slice).unwrap_or(&[]),
            ChaseFact::Role(r, _, _) => role_rules.get(&r).map(Vec::as_slice).unwrap_or(&[]),
        };
        // Collect conclusions first: rule firing may need &mut inst.
        let mut new_facts: Vec<ChaseFact> = Vec::new();
        for ax in rules {
            apply_rule(ax, fact, &mut inst, max_depth, &mut new_facts);
        }
        for f in new_facts {
            if inst.add(f) {
                agenda.push(f);
            }
        }
    }
    inst
}

/// Fire one positive axiom on one trigger fact, pushing conclusions.
fn apply_rule(
    ax: &Axiom,
    fact: ChaseFact,
    inst: &mut ChaseInstance,
    max_depth: u32,
    out: &mut Vec<ChaseFact>,
) {
    // The frontier term(s) bound by the LHS.
    let bound: Option<ChaseTerm> = match (ax, fact) {
        (Axiom::Concept(ci), ChaseFact::Concept(c, t)) => match ci.lhs {
            BasicConcept::Atomic(lc) if lc == c => Some(t),
            _ => None,
        },
        (Axiom::Concept(ci), ChaseFact::Role(r, a, b)) => match ci.lhs {
            BasicConcept::Exists(lr) if lr.name == r => Some(if lr.inverse { b } else { a }),
            _ => None,
        },
        (Axiom::Role(_), ChaseFact::Concept(..)) => None,
        (Axiom::Role(ri), ChaseFact::Role(r, a, b)) => {
            if ri.lhs.name == r {
                // Handled below without the single-term shortcut.
                let (x, y) = if ri.lhs.inverse { (b, a) } else { (a, b) };
                // rhs is normalized direct.
                let f = ChaseFact::Role(ri.rhs.name, x, y);
                if !inst.contains(&f) {
                    out.push(f);
                }
            }
            return;
        }
    };
    let Some(t) = bound else { return };
    let Axiom::Concept(ci) = ax else { return };
    match ci.rhs {
        BasicConcept::Atomic(c) => {
            let f = ChaseFact::Concept(c, t);
            if !inst.contains(&f) {
                out.push(f);
            }
        }
        BasicConcept::Exists(role) => {
            // Restricted chase: fire only if no witness exists yet.
            let satisfied = if role.inverse {
                inst.role_pairs(role.name).iter().any(|&(_, b)| b == t)
            } else {
                inst.role_pairs(role.name).iter().any(|&(a, _)| a == t)
            };
            if satisfied {
                return;
            }
            let d = inst.depth(t);
            if d >= max_depth {
                inst.truncated = true;
                return;
            }
            let null = inst.fresh_null(d + 1);
            let f = if role.inverse {
                ChaseFact::Role(role.name, null, t)
            } else {
                ChaseFact::Role(role.name, t, null)
            };
            out.push(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abox::example1_abox;
    use crate::tbox::{example1_tbox, TBoxBuilder};

    /// Example 2 of the paper: entailed assertions of the Example-1 KB.
    #[test]
    fn example2_entailed_assertions() {
        let (mut voc, tbox) = example1_tbox();
        let abox = example1_abox(&mut voc);
        let inst = chase(&tbox, &abox, 3);

        let works = voc.find_role("worksWith").unwrap();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let ioana = ChaseTerm::Const(voc.find_individual("Ioana").unwrap());
        let francois = ChaseTerm::Const(voc.find_individual("Francois").unwrap());
        let damian = ChaseTerm::Const(voc.find_individual("Damian").unwrap());

        // K |= worksWith(Francois, Ioana), via (T4) + (A1).
        assert!(inst.contains(&ChaseFact::Role(works, francois, ioana)));
        // K |= PhDStudent(Damian), via (A2) + (T6).
        assert!(inst.contains(&ChaseFact::Concept(phd, damian)));
        // K |= worksWith(Francois, Damian), via (A3) + (T5) + (T4).
        assert!(inst.contains(&ChaseFact::Role(works, francois, damian)));
        // Also worksWith(Damian, Francois) via (A3) + (T5).
        assert!(inst.contains(&ChaseFact::Role(works, damian, francois)));
    }

    #[test]
    fn restricted_chase_reuses_witnesses() {
        // A ⊑ ∃r plus explicit r(x, y): no null should be created for x.
        let mut b = TBoxBuilder::new();
        b.sub("A", "exists r");
        let (mut voc, tbox) = b.finish();
        let r = voc.find_role("r").unwrap();
        let a = voc.find_concept("A").unwrap();
        let x = voc.individual("x");
        let y = voc.individual("y");
        let mut abox = ABox::new();
        abox.assert_role(r, x, y);
        abox.assert_concept(a, x);
        let inst = chase(&tbox, &abox, 5);
        assert_eq!(inst.num_nulls(), 0, "explicit witness satisfies the rule");
        assert!(!inst.truncated());
    }

    #[test]
    fn existential_rule_invents_null() {
        let mut b = TBoxBuilder::new();
        b.sub("A", "exists r");
        let (mut voc, tbox) = b.finish();
        let a = voc.find_concept("A").unwrap();
        let r = voc.find_role("r").unwrap();
        let x = voc.individual("x");
        let mut abox = ABox::new();
        abox.assert_concept(a, x);
        let inst = chase(&tbox, &abox, 5);
        assert_eq!(inst.num_nulls(), 1);
        let pairs = inst.role_pairs(r);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, ChaseTerm::Const(x));
        assert!(!pairs[0].1.is_const());
    }

    #[test]
    fn cyclic_existentials_truncate_at_depth() {
        // A ⊑ ∃r, ∃r⁻ ⊑ A: infinite chase; bounded at depth d creates d
        // nulls along the chain.
        let mut b = TBoxBuilder::new();
        b.sub("A", "exists r").sub("exists r-", "A");
        let (mut voc, tbox) = b.finish();
        let a = voc.find_concept("A").unwrap();
        let x = voc.individual("x");
        let mut abox = ABox::new();
        abox.assert_concept(a, x);
        for depth in 1..5u32 {
            let inst = chase(&tbox, &abox, depth);
            assert_eq!(inst.num_nulls(), depth as usize);
            assert!(inst.truncated(), "cycle must hit the bound");
        }
    }

    #[test]
    fn depth_zero_is_plain_saturation() {
        let mut b = TBoxBuilder::new();
        b.sub("A", "B").sub("A", "exists r");
        let (mut voc, tbox) = b.finish();
        let a = voc.find_concept("A").unwrap();
        let bb = voc.find_concept("B").unwrap();
        let x = voc.individual("x");
        let mut abox = ABox::new();
        abox.assert_concept(a, x);
        let inst = chase(&tbox, &abox, 0);
        assert!(inst.contains(&ChaseFact::Concept(bb, ChaseTerm::Const(x))));
        assert_eq!(inst.num_nulls(), 0);
        assert!(inst.truncated(), "the suppressed existential is recorded");
    }

    #[test]
    fn inverse_role_inclusion_swaps_pair() {
        // r ⊑ s⁻ normalizes to r⁻ ⊑ s: r(x,y) ⟹ s(y,x).
        let mut b = TBoxBuilder::new();
        b.sub_role("r", "s-");
        let (mut voc, tbox) = b.finish();
        let r = voc.find_role("r").unwrap();
        let s = voc.find_role("s").unwrap();
        let x = voc.individual("x");
        let y = voc.individual("y");
        let mut abox = ABox::new();
        abox.assert_role(r, x, y);
        let inst = chase(&tbox, &abox, 2);
        assert!(inst.contains(&ChaseFact::Role(
            s,
            ChaseTerm::Const(y),
            ChaseTerm::Const(x)
        )));
    }

    #[test]
    fn basic_concept_members_of_exists() {
        let mut voc = Vocabulary::new();
        let r = voc.role("r");
        let x = voc.individual("x");
        let y = voc.individual("y");
        let mut abox = ABox::new();
        abox.assert_role(r, x, y);
        let inst = chase(&TBox::new(), &abox, 1);
        let fwd = inst.basic_concept_members(BasicConcept::Exists(Role::direct(r)));
        assert_eq!(fwd, vec![ChaseTerm::Const(x)]);
        let bwd = inst.basic_concept_members(BasicConcept::Exists(Role::inv(r)));
        assert_eq!(bwd, vec![ChaseTerm::Const(y)]);
    }

    use crate::vocab::Vocabulary;
}
