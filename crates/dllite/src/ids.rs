//! Typed identifiers for the three DL-LiteR vocabularies.
//!
//! A knowledge base is built from a set `NC` of concept names (unary
//! predicates), a set `NR` of role names (binary predicates) and a set `NI`
//! of individuals (constants) — paper §2.1. All three are dictionary-encoded
//! into dense `u32` ids so that downstream structures (ABoxes, query atoms,
//! dependency bitsets, RDBMS tables) stay compact.

use std::fmt;

/// Identifier of a concept name (`A ∈ NC`), dense per [`crate::Vocabulary`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ConceptId(pub u32);

/// Identifier of a role name (`R ∈ NR`), dense per [`crate::Vocabulary`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RoleId(pub u32);

/// Identifier of an individual (`a ∈ NI`), dense per [`crate::Vocabulary`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct IndividualId(pub u32);

/// A predicate name: either a concept (unary) or a role (binary).
///
/// This is the notion of *name* used by the dependency analysis of
/// Definition 4: `dep(N)` is a set of concept **and** role names, so the two
/// id spaces need a common envelope.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum PredId {
    Concept(ConceptId),
    Role(RoleId),
}

impl PredId {
    /// Arity of the predicate: 1 for concepts, 2 for roles.
    pub fn arity(self) -> usize {
        match self {
            PredId::Concept(_) => 1,
            PredId::Role(_) => 2,
        }
    }

    pub fn as_concept(self) -> Option<ConceptId> {
        match self {
            PredId::Concept(c) => Some(c),
            PredId::Role(_) => None,
        }
    }

    pub fn as_role(self) -> Option<RoleId> {
        match self {
            PredId::Role(r) => Some(r),
            PredId::Concept(_) => None,
        }
    }

    /// Dense index of this predicate in a unified space of
    /// `num_concepts + num_roles` slots (concepts first). Used for the
    /// dependency bitsets of [`crate::deps`].
    pub fn dense_index(self, num_concepts: usize) -> usize {
        match self {
            PredId::Concept(c) => c.0 as usize,
            PredId::Role(r) => num_concepts + r.0 as usize,
        }
    }

    /// Inverse of [`PredId::dense_index`].
    pub fn from_dense_index(idx: usize, num_concepts: usize) -> PredId {
        if idx < num_concepts {
            PredId::Concept(ConceptId(idx as u32))
        } else {
            PredId::Role(RoleId((idx - num_concepts) as u32))
        }
    }
}

impl fmt::Display for ConceptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Display for RoleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Display for IndividualId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredId::Concept(c) => write!(f, "{c}"),
            PredId::Role(r) => write!(f, "{r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_is_one_for_concepts_two_for_roles() {
        assert_eq!(PredId::Concept(ConceptId(0)).arity(), 1);
        assert_eq!(PredId::Role(RoleId(0)).arity(), 2);
    }

    #[test]
    fn dense_index_roundtrip() {
        let nc = 5;
        for idx in 0..12 {
            let p = PredId::from_dense_index(idx, nc);
            assert_eq!(p.dense_index(nc), idx);
        }
    }

    #[test]
    fn dense_index_orders_concepts_before_roles() {
        assert_eq!(PredId::Concept(ConceptId(3)).dense_index(5), 3);
        assert_eq!(PredId::Role(RoleId(0)).dense_index(5), 5);
        assert_eq!(PredId::Role(RoleId(2)).dense_index(5), 7);
    }

    #[test]
    fn accessors() {
        assert_eq!(
            PredId::Concept(ConceptId(1)).as_concept(),
            Some(ConceptId(1))
        );
        assert_eq!(PredId::Concept(ConceptId(1)).as_role(), None);
        assert_eq!(PredId::Role(RoleId(2)).as_role(), Some(RoleId(2)));
        assert_eq!(PredId::Role(RoleId(2)).as_concept(), None);
    }
}
