//! Concept and role dependencies w.r.t. a TBox — Definition 4.
//!
//! `dep(N)` is the set of concept/role names into which atoms over `N` may
//! turn through backward constraint application and/or unification during
//! CQ-to-UCQ reformulation. It is the fixpoint of
//!
//! ```text
//! dep⁰(N) = {N}
//! depⁿ(N) = depⁿ⁻¹(N) ∪ {cr(Y) | Y ⊑ X ∈ T and cr(X) ∈ depⁿ⁻¹(N)}
//! ```
//!
//! where `cr(·)` strips a basic concept or role expression down to its
//! underlying name. Only *positive* inclusions participate.
//!
//! Two query atoms are inseparable (must share a cover fragment,
//! Definition 5) iff their predicates' dependency sets intersect; this
//! module precomputes all dependency sets as bitsets so that the test is a
//! handful of word ANDs.

use crate::bitset::BitSet;
use crate::ids::PredId;
use crate::tbox::TBox;
use crate::vocab::Vocabulary;

/// Precomputed `dep(N)` for every predicate name of a vocabulary.
#[derive(Debug, Clone)]
pub struct Dependencies {
    /// `sets[p.dense_index()]` = dep of predicate `p` as a bitset over dense
    /// predicate indexes.
    sets: Vec<BitSet>,
    num_concepts: usize,
}

impl Dependencies {
    /// Compute all dependency sets for `tbox` over `voc`.
    ///
    /// Implementation: build the reversed inclusion graph with an edge
    /// `cr(X) → cr(Y)` for every positive inclusion `Y ⊑ X`, then saturate
    /// each predicate's reachable set. Saturation is a simple worklist over
    /// bitsets; TBoxes here are small (≤ a few hundred predicates).
    pub fn compute(voc: &Vocabulary, tbox: &TBox) -> Self {
        let n = voc.num_preds();
        let nc = voc.num_concepts();

        // adjacency: edges[cr(X)] ∋ cr(Y) for Y ⊑ X.
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for ax in tbox.positive_axioms() {
            let (from, to) = match ax {
                crate::axiom::Axiom::Concept(ci) => {
                    (ci.rhs.cr().dense_index(nc), ci.lhs.cr().dense_index(nc))
                }
                crate::axiom::Axiom::Role(ri) => {
                    (ri.rhs.cr().dense_index(nc), ri.lhs.cr().dense_index(nc))
                }
            };
            edges[from].push(to);
        }
        for adj in &mut edges {
            adj.sort_unstable();
            adj.dedup();
        }

        // dep(N) = reachability from N in `edges` (including N itself).
        let mut sets = Vec::with_capacity(n);
        let mut stack = Vec::new();
        for start in 0..n {
            let mut set = BitSet::new(n);
            set.insert(start);
            stack.clear();
            stack.push(start);
            while let Some(v) = stack.pop() {
                for &w in &edges[v] {
                    if set.insert(w) {
                        stack.push(w);
                    }
                }
            }
            sets.push(set);
        }
        Dependencies {
            sets,
            num_concepts: nc,
        }
    }

    /// `dep(N)` as a bitset over dense predicate indexes.
    pub fn dep(&self, pred: PredId) -> &BitSet {
        &self.sets[pred.dense_index(self.num_concepts)]
    }

    /// `dep(N)` as explicit predicate ids (mostly for display/tests).
    pub fn dep_preds(&self, pred: PredId) -> Vec<PredId> {
        self.dep(pred)
            .iter()
            .map(|i| PredId::from_dense_index(i, self.num_concepts))
            .collect()
    }

    /// Do two predicates depend on a common concept or role name?
    ///
    /// This is the binary relation inducing safe covers: atoms whose
    /// predicates share a dependency must live in the same fragment
    /// (Definition 5).
    pub fn share_dependency(&self, p1: PredId, p2: PredId) -> bool {
        self.dep(p1).intersects(self.dep(p2))
    }

    pub fn num_concepts(&self) -> usize {
        self.num_concepts
    }

    pub fn num_preds(&self) -> usize {
        self.sets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PredId;
    use crate::tbox::{example1_tbox, example7_tbox, TBoxBuilder};

    /// Example 8 of the paper: dependencies in the Example-7 TBox.
    #[test]
    fn example8_dependencies() {
        let (voc, tbox) = example7_tbox();
        let deps = Dependencies::compute(&voc, &tbox);
        let phd = PredId::Concept(voc.find_concept("PhDStudent").unwrap());
        let grad = PredId::Concept(voc.find_concept("Graduate").unwrap());
        let works = PredId::Role(voc.find_role("worksWith").unwrap());
        let sup = PredId::Role(voc.find_role("supervisedBy").unwrap());

        assert_eq!(deps.dep_preds(phd), vec![phd]);
        assert_eq!(deps.dep_preds(grad), vec![grad]);

        let mut works_dep = deps.dep_preds(works);
        works_dep.sort();
        let mut expect = vec![works, sup, grad];
        expect.sort();
        assert_eq!(
            works_dep, expect,
            "worksWith depends on supervisedBy and Graduate"
        );

        let mut sup_dep = deps.dep_preds(sup);
        sup_dep.sort();
        let mut expect = vec![sup, grad];
        expect.sort();
        assert_eq!(sup_dep, expect, "supervisedBy depends on Graduate");
    }

    #[test]
    fn share_dependency_is_reflexive_and_symmetric() {
        let (voc, tbox) = example1_tbox();
        let deps = Dependencies::compute(&voc, &tbox);
        let preds: Vec<PredId> = voc
            .concept_ids()
            .map(PredId::Concept)
            .chain(voc.role_ids().map(PredId::Role))
            .collect();
        for &p in &preds {
            assert!(deps.share_dependency(p, p));
            for &q in &preds {
                assert_eq!(deps.share_dependency(p, q), deps.share_dependency(q, p));
            }
        }
    }

    #[test]
    fn example1_phdstudent_and_workswith_share_supervisedby() {
        // In Example 1's TBox, (T6) ∃supervisedBy ⊑ PhDStudent makes
        // PhDStudent depend on supervisedBy, and (T5) supervisedBy ⊑
        // worksWith makes worksWith depend on supervisedBy, hence the two
        // atoms of Example 3's query may unify after specialization.
        let (voc, tbox) = example1_tbox();
        let deps = Dependencies::compute(&voc, &tbox);
        let phd = PredId::Concept(voc.find_concept("PhDStudent").unwrap());
        let works = PredId::Role(voc.find_role("worksWith").unwrap());
        assert!(deps.share_dependency(phd, works));
    }

    #[test]
    fn negative_axioms_do_not_contribute() {
        let mut b = TBoxBuilder::new();
        b.disjoint("A", "B");
        let (voc, tbox) = b.finish();
        let deps = Dependencies::compute(&voc, &tbox);
        let a = PredId::Concept(voc.find_concept("A").unwrap());
        let bb = PredId::Concept(voc.find_concept("B").unwrap());
        assert!(!deps.share_dependency(a, bb));
        assert_eq!(deps.dep_preds(a), vec![a]);
    }

    #[test]
    fn dependency_through_existentials() {
        // A ⊑ ∃r and r ⊑ s gives dep(s) ⊇ {s, r, A}: an s-atom can turn
        // into an r-atom (role inclusion) and then into an A-atom (backward
        // existential).
        let mut b = TBoxBuilder::new();
        b.sub("A", "exists r").sub_role("r", "s");
        let (voc, tbox) = b.finish();
        let deps = Dependencies::compute(&voc, &tbox);
        let s = PredId::Role(voc.find_role("s").unwrap());
        let r = PredId::Role(voc.find_role("r").unwrap());
        let a = PredId::Concept(voc.find_concept("A").unwrap());
        let dep = deps.dep(s);
        assert!(dep.contains(s.dense_index(voc.num_concepts())));
        assert!(dep.contains(r.dense_index(voc.num_concepts())));
        assert!(dep.contains(a.dense_index(voc.num_concepts())));
    }

    #[test]
    fn chains_are_transitive() {
        let mut b = TBoxBuilder::new();
        b.sub("A", "B").sub("B", "C").sub("C", "D");
        let (voc, tbox) = b.finish();
        let deps = Dependencies::compute(&voc, &tbox);
        let d = PredId::Concept(voc.find_concept("D").unwrap());
        assert_eq!(deps.dep(d).len(), 4, "dep(D) = {{D, C, B, A}}");
        let a = PredId::Concept(voc.find_concept("A").unwrap());
        assert_eq!(deps.dep(a).len(), 1, "dep is directional: dep(A) = {{A}}");
    }
}
