//! The knowledge base `K = ⟨T, A⟩` bundling vocabulary, ontology and facts.

use crate::abox::ABox;
use crate::chase::{chase, ChaseInstance};
use crate::consistency::{check_consistency, Violation};
use crate::deps::Dependencies;
use crate::parser::{parse_kb, ParseError};
use crate::tbox::TBox;
use crate::vocab::Vocabulary;

/// A DL-LiteR knowledge base.
///
/// Owns the [`Vocabulary`] shared by its [`TBox`] and [`ABox`]. Dependency
/// sets (Definition 4) are computed once on demand and cached, since every
/// safety check of the cover machinery consults them.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    voc: Vocabulary,
    tbox: TBox,
    abox: ABox,
    deps: Option<Dependencies>,
}

impl KnowledgeBase {
    pub fn new(voc: Vocabulary, tbox: TBox, abox: ABox) -> Self {
        KnowledgeBase {
            voc,
            tbox,
            abox,
            deps: None,
        }
    }

    /// Parse a KB from the textual format of [`crate::parser`].
    pub fn parse(input: &str) -> Result<Self, ParseError> {
        let parsed = parse_kb(input)?;
        Ok(Self::new(parsed.voc, parsed.tbox, parsed.abox))
    }

    pub fn voc(&self) -> &Vocabulary {
        &self.voc
    }

    pub fn tbox(&self) -> &TBox {
        &self.tbox
    }

    pub fn abox(&self) -> &ABox {
        &self.abox
    }

    pub fn voc_mut(&mut self) -> &mut Vocabulary {
        self.deps = None;
        &mut self.voc
    }

    pub fn tbox_mut(&mut self) -> &mut TBox {
        self.deps = None; // axioms affect dependencies
        &mut self.tbox
    }

    pub fn abox_mut(&mut self) -> &mut ABox {
        &mut self.abox
    }

    /// Dependency sets per Definition 4, computed once and cached.
    pub fn deps(&mut self) -> &Dependencies {
        if self.deps.is_none() {
            self.deps = Some(Dependencies::compute(&self.voc, &self.tbox));
        }
        self.deps.as_ref().expect("just computed")
    }

    /// Compute dependencies without caching (for `&self` contexts).
    pub fn compute_deps(&self) -> Dependencies {
        Dependencies::compute(&self.voc, &self.tbox)
    }

    /// Bounded restricted chase of the ABox (testing oracle).
    pub fn chase(&self, max_depth: u32) -> ChaseInstance {
        chase(&self.tbox, &self.abox, max_depth)
    }

    /// All violations of negative constraints (empty = consistent).
    pub fn consistency_violations(&self) -> Vec<Violation> {
        check_consistency(&self.voc, &self.tbox, &self.abox)
    }

    /// Is the ABox `T`-consistent?
    pub fn is_consistent(&self) -> bool {
        self.consistency_violations().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abox::example1_abox;
    use crate::ids::PredId;
    use crate::tbox::example1_tbox;

    fn example1_kb() -> KnowledgeBase {
        let (mut voc, tbox) = example1_tbox();
        let abox = example1_abox(&mut voc);
        KnowledgeBase::new(voc, tbox, abox)
    }

    #[test]
    fn kb_wires_components() {
        let kb = example1_kb();
        assert_eq!(kb.tbox().len(), 7);
        assert_eq!(kb.abox().len(), 3);
        assert!(kb.is_consistent());
    }

    #[test]
    fn deps_are_cached_and_invalidated() {
        let mut kb = example1_kb();
        let works = PredId::Role(kb.voc().find_role("worksWith").unwrap());
        let sup = PredId::Role(kb.voc().find_role("supervisedBy").unwrap());
        assert!(kb.deps().share_dependency(works, sup));
        // Mutating the TBox invalidates the cache (observable only through
        // recomputation correctness).
        let fresh_role = kb.voc_mut().role("fresh");
        let fresh = PredId::Role(fresh_role);
        assert!(!kb.deps().share_dependency(fresh, sup));
    }

    #[test]
    fn parse_roundtrip() {
        let kb = KnowledgeBase::parse("A <= B\nA(x)").unwrap();
        assert_eq!(kb.tbox().len(), 1);
        assert_eq!(kb.abox().len(), 1);
        assert!(kb.is_consistent());
    }

    #[test]
    fn chase_through_kb() {
        let kb = example1_kb();
        let inst = kb.chase(3);
        assert!(inst.num_facts() > kb.abox().len(), "chase infers new facts");
    }
}
