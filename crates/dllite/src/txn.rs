//! Transaction working sets: buffered ABox writes with
//! read-your-own-writes resolution.
//!
//! A [`WorkingSet`] is the client-side half of a transaction. It buffers
//! inserts and retractions *by fact key* (last write per key wins, so
//! `insert; retract; insert` of the same fact collapses to one insert),
//! allocates **provisional ids** for individual names the transaction
//! introduces, and answers visibility probes by overlaying the buffered
//! writes on a pinned base snapshot. Rolling back a transaction is simply
//! dropping its working set — nothing downstream ever saw it.
//!
//! At commit time the serving layer remaps the provisional ids to their
//! final interned ids (other transactions may have committed names in the
//! meantime) and flattens the set into one normalized [`AboxDelta`] via
//! [`WorkingSet::delta_with`]. The delta lists every name the transaction
//! used — interning is idempotent, so replay against a vocabulary that
//! already knows some of the names is harmless.
//!
//! Provisional ids are allocated densely above the pinned snapshot's
//! individual count (`base + k` for the k-th new name), which makes the
//! identity remap correct whenever no concurrent committer interned a
//! name first.

use std::collections::HashMap;

use crate::abox::ABox;
use crate::delta::AboxDelta;
use crate::ids::{ConceptId, IndividualId, RoleId};

/// A buffered concept-fact key: `A(a)`.
pub type ConceptKey = (ConceptId, IndividualId);
/// A buffered role-fact key: `R(a, b)`.
pub type RoleKey = (RoleId, IndividualId, IndividualId);

/// Buffered writes of one open transaction, overlaid on a base snapshot
/// with `base_individuals` interned individuals.
#[derive(Debug, Clone, Default)]
pub struct WorkingSet {
    /// Number of individuals interned in the pinned base snapshot;
    /// provisional ids for new names start here.
    base_individuals: usize,
    /// Names this transaction introduced, in allocation order.
    new_individuals: Vec<String>,
    /// Name → provisional id, for dedup within the transaction.
    name_index: HashMap<String, IndividualId>,
    /// Last buffered write per concept-fact key: `true` = insert,
    /// `false` = retract.
    concept_writes: HashMap<ConceptKey, bool>,
    /// Last buffered write per role-fact key.
    role_writes: HashMap<RoleKey, bool>,
    /// Monotonic edit counter — bumps on every buffered write, so callers
    /// can cheaply invalidate caches derived from the overlay.
    version: u64,
}

impl WorkingSet {
    /// An empty working set over a base snapshot with `base_individuals`
    /// interned individuals.
    pub fn new(base_individuals: usize) -> Self {
        WorkingSet {
            base_individuals,
            ..WorkingSet::default()
        }
    }

    /// The base snapshot's individual count this set was opened against.
    pub fn base_individuals(&self) -> usize {
        self.base_individuals
    }

    /// Names introduced by this transaction, in provisional-id order
    /// (`base_individuals + k` for the k-th entry).
    pub fn new_individuals(&self) -> &[String] {
        &self.new_individuals
    }

    /// Intern `name` within the transaction, returning a provisional id.
    ///
    /// Idempotent per name; the id is only meaningful against this
    /// working set's overlay until commit remaps it.
    pub fn new_individual(&mut self, name: &str) -> IndividualId {
        if let Some(&id) = self.name_index.get(name) {
            return id;
        }
        let id = IndividualId((self.base_individuals + self.new_individuals.len()) as u32);
        self.new_individuals.push(name.to_owned());
        self.name_index.insert(name.to_owned(), id);
        self.version += 1;
        id
    }

    /// Look up a name this transaction introduced (not base names).
    pub fn find_new_individual(&self, name: &str) -> Option<IndividualId> {
        self.name_index.get(name).copied()
    }

    /// The name behind a provisional id, if this set allocated it.
    pub fn provisional_name(&self, id: IndividualId) -> Option<&str> {
        (id.0 as usize)
            .checked_sub(self.base_individuals)
            .and_then(|k| self.new_individuals.get(k))
            .map(String::as_str)
    }

    /// Buffer an insert of `A(a)`; supersedes any earlier write of the key.
    pub fn insert_concept(&mut self, c: ConceptId, a: IndividualId) {
        self.concept_writes.insert((c, a), true);
        self.version += 1;
    }

    /// Buffer a retraction of `A(a)`; supersedes any earlier write.
    pub fn retract_concept(&mut self, c: ConceptId, a: IndividualId) {
        self.concept_writes.insert((c, a), false);
        self.version += 1;
    }

    /// Buffer an insert of `R(a, b)`; supersedes any earlier write.
    pub fn insert_role(&mut self, r: RoleId, a: IndividualId, b: IndividualId) {
        self.role_writes.insert((r, a, b), true);
        self.version += 1;
    }

    /// Buffer a retraction of `R(a, b)`; supersedes any earlier write.
    pub fn retract_role(&mut self, r: RoleId, a: IndividualId, b: IndividualId) {
        self.role_writes.insert((r, a, b), false);
        self.version += 1;
    }

    /// Read-your-own-writes visibility of `A(a)`: the buffered write if
    /// any, else the pinned base ABox.
    pub fn sees_concept(&self, base: &ABox, c: ConceptId, a: IndividualId) -> bool {
        match self.concept_writes.get(&(c, a)) {
            Some(&present) => present,
            None => base.has_concept(c, a),
        }
    }

    /// Read-your-own-writes visibility of `R(a, b)`.
    pub fn sees_role(&self, base: &ABox, r: RoleId, a: IndividualId, b: IndividualId) -> bool {
        match self.role_writes.get(&(r, a, b)) {
            Some(&present) => present,
            None => base.has_role(r, a, b),
        }
    }

    /// Number of buffered fact writes (one per distinct key).
    pub fn len(&self) -> usize {
        self.concept_writes.len() + self.role_writes.len()
    }

    /// `true` when nothing was written and no name was introduced.
    pub fn is_empty(&self) -> bool {
        self.len() == 0 && self.new_individuals.is_empty()
    }

    /// Edit counter; bumps on every buffered write or name allocation.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The buffered write for one concept-fact key, if any
    /// (`true` = insert, `false` = retract).
    pub fn concept_write(&self, key: ConceptKey) -> Option<bool> {
        self.concept_writes.get(&key).copied()
    }

    /// The buffered write for one role-fact key, if any.
    pub fn role_write(&self, key: RoleKey) -> Option<bool> {
        self.role_writes.get(&key).copied()
    }

    /// Iterate the buffered concept writes (`key`, `true` = insert).
    pub fn concept_writes(&self) -> impl Iterator<Item = (ConceptKey, bool)> + '_ {
        self.concept_writes.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterate the buffered role writes.
    pub fn role_writes(&self) -> impl Iterator<Item = (RoleKey, bool)> + '_ {
        self.role_writes.iter().map(|(&k, &v)| (k, v))
    }

    /// Flatten into one normalized [`AboxDelta`], remapping every
    /// individual id through `remap` (provisional → final interned ids;
    /// base ids map to themselves).
    ///
    /// Normalized means: each key appears at most once, inserts and
    /// deletes are disjoint, and both vectors are sorted — so two
    /// transactions with the same net effect produce byte-identical
    /// deltas regardless of write order.
    pub fn delta_with(&self, mut remap: impl FnMut(IndividualId) -> IndividualId) -> AboxDelta {
        let mut delta = AboxDelta {
            new_individuals: self.new_individuals.clone(),
            ..AboxDelta::default()
        };
        for ((c, a), present) in self.concept_writes.iter().map(|(&k, &v)| (k, v)) {
            let key = (c, remap(a));
            if present {
                delta.insert_concepts.push(key);
            } else {
                delta.delete_concepts.push(key);
            }
        }
        for ((r, a, b), present) in self.role_writes.iter().map(|(&k, &v)| (k, v)) {
            let key = (r, remap(a), remap(b));
            if present {
                delta.insert_roles.push(key);
            } else {
                delta.delete_roles.push(key);
            }
        }
        delta.insert_concepts.sort_unstable();
        delta.delete_concepts.sort_unstable();
        delta.insert_roles.sort_unstable();
        delta.delete_roles.sort_unstable();
        delta
    }

    /// [`WorkingSet::delta_with`] under the identity remap — correct when
    /// no concurrent transaction committed since the base was pinned.
    pub fn delta(&self) -> AboxDelta {
        self.delta_with(|id| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocabulary;

    fn setup() -> (
        Vocabulary,
        ABox,
        ConceptId,
        RoleId,
        IndividualId,
        IndividualId,
    ) {
        let mut voc = Vocabulary::new();
        let c = voc.concept("Student");
        let r = voc.role("knows");
        let x = voc.individual("x");
        let y = voc.individual("y");
        let mut abox = ABox::new();
        abox.assert_concept(c, x);
        abox.assert_role(r, x, y);
        (voc, abox, c, r, x, y)
    }

    #[test]
    fn reads_overlay_base_until_written() {
        let (voc, abox, c, r, x, y) = setup();
        let mut ws = WorkingSet::new(voc.num_individuals());
        assert!(ws.sees_concept(&abox, c, x));
        assert!(ws.sees_role(&abox, r, x, y));
        ws.retract_concept(c, x);
        assert!(!ws.sees_concept(&abox, c, x), "own retraction visible");
        ws.insert_concept(c, y);
        assert!(ws.sees_concept(&abox, c, y), "own insert visible");
        assert!(!abox.has_concept(c, y), "base untouched");
    }

    #[test]
    fn last_write_per_key_wins() {
        let (voc, abox, c, _r, x, _y) = setup();
        let mut ws = WorkingSet::new(voc.num_individuals());
        ws.retract_concept(c, x);
        ws.insert_concept(c, x);
        assert!(ws.sees_concept(&abox, c, x));
        let d = ws.delta();
        assert_eq!(d.insert_concepts, vec![(c, x)]);
        assert!(d.delete_concepts.is_empty(), "retract was superseded");
        assert_eq!(ws.len(), 1, "one key, one buffered write");
    }

    #[test]
    fn provisional_ids_are_dense_and_deduped() {
        let (voc, _abox, _c, _r, _x, _y) = setup();
        let base = voc.num_individuals();
        let mut ws = WorkingSet::new(base);
        let p = ws.new_individual("fresh");
        let q = ws.new_individual("fresher");
        assert_eq!(p, IndividualId(base as u32));
        assert_eq!(q, IndividualId(base as u32 + 1));
        assert_eq!(ws.new_individual("fresh"), p, "idempotent per name");
        assert_eq!(ws.provisional_name(p), Some("fresh"));
        assert_eq!(ws.provisional_name(IndividualId(0)), None, "base id");
        assert_eq!(ws.find_new_individual("fresher"), Some(q));
        assert_eq!(ws.find_new_individual("x"), None, "base names not indexed");
    }

    #[test]
    fn delta_with_remaps_provisional_ids() {
        let (voc, _abox, c, r, x, _y) = setup();
        let base = voc.num_individuals();
        let mut ws = WorkingSet::new(base);
        let p = ws.new_individual("fresh");
        ws.insert_concept(c, p);
        ws.insert_role(r, x, p);
        // Pretend a concurrent committer used one id slot first.
        let final_id = IndividualId(p.0 + 1);
        let d = ws.delta_with(|id| if id == p { final_id } else { id });
        assert_eq!(d.new_individuals, vec!["fresh".to_owned()]);
        assert_eq!(d.insert_concepts, vec![(c, final_id)]);
        assert_eq!(d.insert_roles, vec![(r, x, final_id)]);
    }

    #[test]
    fn delta_is_normalized_and_order_independent() {
        let (voc, _abox, c, r, x, y) = setup();
        let mk = |flip: bool| {
            let mut ws = WorkingSet::new(voc.num_individuals());
            if flip {
                ws.insert_role(r, y, x);
                ws.retract_concept(c, x);
                ws.insert_concept(c, y);
            } else {
                ws.insert_concept(c, y);
                ws.insert_role(r, y, x);
                ws.retract_concept(c, x);
            }
            ws.delta()
        };
        assert_eq!(mk(false), mk(true), "write order does not leak");
    }

    #[test]
    fn version_bumps_on_every_edit() {
        let (voc, _abox, c, _r, x, _y) = setup();
        let mut ws = WorkingSet::new(voc.num_individuals());
        let v0 = ws.version();
        ws.insert_concept(c, x);
        assert!(ws.version() > v0);
        let v1 = ws.version();
        ws.new_individual("fresh");
        assert!(ws.version() > v1);
    }

    #[test]
    fn rollback_is_drop() {
        let (voc, abox, c, _r, x, _y) = setup();
        let mut ws = WorkingSet::new(voc.num_individuals());
        ws.retract_concept(c, x);
        drop(ws);
        assert!(abox.has_concept(c, x), "nothing escaped the working set");
    }
}
