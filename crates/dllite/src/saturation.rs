//! TBox saturation: the deductive closure of a DL-LiteR TBox.
//!
//! Computes all concept/role inclusions (positive and negative) entailed by
//! a TBox, enabling the entailment checks of paper Example 2 (e.g.
//! `K ⊨ ∃supervisedBy ⊑ ¬∃supervisedBy⁻` from (T6) + (T7)).
//!
//! Saturation rules (standard for DL-LiteR, cf. the paper's technical
//! report \[8\]):
//!
//! 1. `B1 ⊑ B2, B2 ⊑ B3 ⊢ B1 ⊑ B3` (transitivity on basic concepts)
//! 2. `R1 ⊑ R2, R2 ⊑ R3 ⊢ R1 ⊑ R3` (transitivity on roles), with the
//!    inverse closure `R1 ⊑ R2 ⊢ R1⁻ ⊑ R2⁻`
//! 3. `R1 ⊑ R2 ⊢ ∃R1 ⊑ ∃R2` and `∃R1⁻ ⊑ ∃R2⁻`
//! 4. `B1 ⊑ B2, B2 ⊑ ¬B3 ⊢ B1 ⊑ ¬B3`
//! 5. `B ⊑ ¬B' ⊢ B' ⊑ ¬B` (disjointness is symmetric)
//! 6. `R1 ⊑ R2, R2 ⊑ ¬R3 ⊢ R1 ⊑ ¬R3`, and role-disjointness symmetry and
//!    inverse closure.
//!
//! Note rule 3 together with rule 1 derives e.g. `B ⊑ ∃S` from `B ⊑ ∃R`
//! and `R ⊑ S`.

use std::collections::HashSet;

use crate::axiom::Axiom;
use crate::expr::{BasicConcept, Role};
use crate::tbox::TBox;

/// The deductive closure of a TBox, as explicit relation sets.
///
/// Role inclusions are stored in *both* orientations (`(l, r)` and
/// `(l⁻, r⁻)`), so lookups need no normalization.
#[derive(Debug, Default)]
pub struct TBoxClosure {
    pos_concept: HashSet<(BasicConcept, BasicConcept)>,
    neg_concept: HashSet<(BasicConcept, BasicConcept)>,
    pos_role: HashSet<(Role, Role)>,
    neg_role: HashSet<(Role, Role)>,
}

impl TBoxClosure {
    /// Saturate `tbox`.
    pub fn compute(tbox: &TBox) -> Self {
        let mut c = TBoxClosure::default();
        let mut agenda: Vec<Item> = Vec::new();
        for ax in tbox.axioms() {
            for item in Item::from_axiom(ax) {
                c.push(item, &mut agenda);
            }
        }
        while let Some(item) = agenda.pop() {
            let derived = c.combine(item);
            for d in derived {
                c.push(d, &mut agenda);
            }
        }
        c
    }

    /// `K ⊨ B1 ⊑ B2`? (Reflexivity included.)
    pub fn entails_concept_inclusion(&self, b1: BasicConcept, b2: BasicConcept) -> bool {
        b1 == b2 || self.pos_concept.contains(&(b1, b2))
    }

    /// `K ⊨ B1 ⊑ ¬B2`?
    pub fn entails_concept_disjointness(&self, b1: BasicConcept, b2: BasicConcept) -> bool {
        self.neg_concept.contains(&(b1, b2))
    }

    /// `K ⊨ R1 ⊑ R2`? (Reflexivity included.)
    pub fn entails_role_inclusion(&self, r1: Role, r2: Role) -> bool {
        r1 == r2 || self.pos_role.contains(&(r1, r2))
    }

    /// `K ⊨ R1 ⊑ ¬R2`?
    pub fn entails_role_disjointness(&self, r1: Role, r2: Role) -> bool {
        self.neg_role.contains(&(r1, r2))
    }

    /// All entailed positive concept inclusions (the non-reflexive ones).
    /// The constraint miner walks these: they are exactly the
    /// specialization edges PerfectRef can introduce between union arms,
    /// so data-level extent comparisons outside this set can never be
    /// consulted by constraint-driven pruning.
    pub fn positive_concept_inclusions(
        &self,
    ) -> impl Iterator<Item = (BasicConcept, BasicConcept)> + '_ {
        self.pos_concept.iter().copied()
    }

    /// All entailed positive role inclusions (both orientations, as
    /// stored).
    pub fn positive_role_inclusions(&self) -> impl Iterator<Item = (Role, Role)> + '_ {
        self.pos_role.iter().copied()
    }

    /// All entailed negative concept inclusions (used by consistency
    /// checking via reformulation).
    pub fn negative_concept_inclusions(
        &self,
    ) -> impl Iterator<Item = (BasicConcept, BasicConcept)> + '_ {
        self.neg_concept.iter().copied()
    }

    /// All entailed negative role inclusions.
    pub fn negative_role_inclusions(&self) -> impl Iterator<Item = (Role, Role)> + '_ {
        self.neg_role.iter().copied()
    }

    pub fn num_positive_concept(&self) -> usize {
        self.pos_concept.len()
    }

    pub fn num_positive_role(&self) -> usize {
        self.pos_role.len()
    }

    fn push(&mut self, item: Item, agenda: &mut Vec<Item>) {
        let new = match item {
            Item::PosC(a, b) => a != b && self.pos_concept.insert((a, b)),
            Item::NegC(a, b) => self.neg_concept.insert((a, b)),
            Item::PosR(a, b) => a != b && self.pos_role.insert((a, b)),
            Item::NegR(a, b) => self.neg_role.insert((a, b)),
        };
        if new {
            agenda.push(item);
        }
    }

    /// All items derivable by combining `item` with the current closure
    /// (one application of each rule).
    fn combine(&self, item: Item) -> Vec<Item> {
        let mut out = Vec::new();
        match item {
            Item::PosC(b1, b2) => {
                // rule 1 both directions, rule 4.
                for &(x, y) in &self.pos_concept {
                    if x == b2 {
                        out.push(Item::PosC(b1, y));
                    }
                    if y == b1 {
                        out.push(Item::PosC(x, b2));
                    }
                }
                for &(x, y) in &self.neg_concept {
                    if x == b2 {
                        out.push(Item::NegC(b1, y));
                    }
                }
            }
            Item::NegC(b1, b2) => {
                // rule 5 symmetry; rule 4 with existing positives.
                out.push(Item::NegC(b2, b1));
                for &(x, y) in &self.pos_concept {
                    if y == b1 {
                        out.push(Item::NegC(x, b2));
                    }
                }
            }
            Item::PosR(r1, r2) => {
                // inverse closure.
                out.push(Item::PosR(r1.inverted(), r2.inverted()));
                // rule 3: ∃-lift.
                out.push(Item::PosC(
                    BasicConcept::Exists(r1),
                    BasicConcept::Exists(r2),
                ));
                // rule 2 both directions.
                for &(x, y) in &self.pos_role {
                    if x == r2 {
                        out.push(Item::PosR(r1, y));
                    }
                    if y == r1 {
                        out.push(Item::PosR(x, r2));
                    }
                }
                // rule 6 with existing negatives.
                for &(x, y) in &self.neg_role {
                    if x == r2 {
                        out.push(Item::NegR(r1, y));
                    }
                }
            }
            Item::NegR(r1, r2) => {
                out.push(Item::NegR(r2, r1));
                out.push(Item::NegR(r1.inverted(), r2.inverted()));
                for &(x, y) in &self.pos_role {
                    if y == r1 {
                        out.push(Item::NegR(x, r2));
                    }
                }
            }
        }
        out
    }
}

/// A closure item: one inclusion of one of the four kinds.
#[derive(Clone, Copy, Debug)]
enum Item {
    PosC(BasicConcept, BasicConcept),
    NegC(BasicConcept, BasicConcept),
    PosR(Role, Role),
    NegR(Role, Role),
}

impl Item {
    fn from_axiom(ax: &Axiom) -> Vec<Item> {
        match *ax {
            Axiom::Concept(ci) if !ci.negated => vec![Item::PosC(ci.lhs, ci.rhs)],
            Axiom::Concept(ci) => vec![Item::NegC(ci.lhs, ci.rhs)],
            Axiom::Role(ri) if !ri.negated => vec![Item::PosR(ri.lhs, ri.rhs)],
            Axiom::Role(ri) => vec![Item::NegR(ri.lhs, ri.rhs)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tbox::{example1_tbox, TBoxBuilder};

    /// Example 2, first bullet: ∃supervisedBy ⊑ ¬∃supervisedBy⁻ from
    /// (T6) + (T7).
    #[test]
    fn example2_negative_entailment() {
        let (voc, tbox) = example1_tbox();
        let closure = TBoxClosure::compute(&tbox);
        let sup = voc.find_role("supervisedBy").unwrap();
        let lhs = BasicConcept::Exists(Role::direct(sup));
        let rhs = BasicConcept::Exists(Role::inv(sup));
        assert!(closure.entails_concept_disjointness(lhs, rhs));
        // And by symmetry:
        assert!(closure.entails_concept_disjointness(rhs, lhs));
    }

    #[test]
    fn transitive_concept_chain() {
        let mut b = TBoxBuilder::new();
        b.sub("A", "B").sub("B", "C").sub("C", "D");
        let (voc, tbox) = b.finish();
        let closure = TBoxClosure::compute(&tbox);
        let a = BasicConcept::Atomic(voc.find_concept("A").unwrap());
        let d = BasicConcept::Atomic(voc.find_concept("D").unwrap());
        assert!(closure.entails_concept_inclusion(a, d));
        assert!(!closure.entails_concept_inclusion(d, a));
    }

    #[test]
    fn role_transitivity_through_inverses() {
        // r ⊑ s⁻ and s ⊑ t gives r ⊑ t⁻ (via s⁻ ⊑ t⁻).
        let mut b = TBoxBuilder::new();
        b.sub_role("r", "s-").sub_role("s", "t");
        let (voc, tbox) = b.finish();
        let closure = TBoxClosure::compute(&tbox);
        let r = Role::direct(voc.find_role("r").unwrap());
        let t = Role::direct(voc.find_role("t").unwrap());
        assert!(closure.entails_role_inclusion(r, t.inverted()));
        assert!(closure.entails_role_inclusion(r.inverted(), t));
        assert!(!closure.entails_role_inclusion(r, t));
    }

    #[test]
    fn exists_lift_composes_with_concept_chain() {
        // B ⊑ ∃r, r ⊑ s ⊢ B ⊑ ∃s.
        let mut b = TBoxBuilder::new();
        b.sub("B", "exists r").sub_role("r", "s");
        let (voc, tbox) = b.finish();
        let closure = TBoxClosure::compute(&tbox);
        let bb = BasicConcept::Atomic(voc.find_concept("B").unwrap());
        let s = voc.find_role("s").unwrap();
        assert!(closure.entails_concept_inclusion(bb, BasicConcept::Exists(Role::direct(s))));
        assert!(!closure.entails_concept_inclusion(bb, BasicConcept::Exists(Role::inv(s))));
    }

    #[test]
    fn reflexivity_is_implicit() {
        let (voc, tbox) = example1_tbox();
        let closure = TBoxClosure::compute(&tbox);
        let phd = BasicConcept::Atomic(voc.find_concept("PhDStudent").unwrap());
        assert!(closure.entails_concept_inclusion(phd, phd));
    }

    #[test]
    fn negative_propagates_down_role_hierarchy() {
        // r ⊑ s, s ⊑ ¬t ⊢ r ⊑ ¬t, and symmetric t ⊑ ¬r.
        let mut b = TBoxBuilder::new();
        b.sub_role("r", "s").disjoint_role("s", "t");
        let (voc, tbox) = b.finish();
        let closure = TBoxClosure::compute(&tbox);
        let r = Role::direct(voc.find_role("r").unwrap());
        let t = Role::direct(voc.find_role("t").unwrap());
        assert!(closure.entails_role_disjointness(r, t));
        assert!(closure.entails_role_disjointness(t, r));
        assert!(closure.entails_role_disjointness(r.inverted(), t.inverted()));
    }

    #[test]
    fn example1_closure_counts_are_stable() {
        // Regression guard: the Example-1 closure has a fixed size.
        let (_, tbox) = example1_tbox();
        let closure = TBoxClosure::compute(&tbox);
        assert!(closure.num_positive_concept() >= 6);
        assert!(closure.num_positive_role() >= 2);
    }
}
