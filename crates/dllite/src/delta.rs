//! Incremental ABox updates: the [`AboxDelta`] batch.
//!
//! A delta is the unit of change of the durable store: the serving
//! layer's `apply_batch` appends one delta to the write-ahead log and
//! then applies it to the live ABox, layouts and statistics *in place*
//! (`obda_rdbms::store`), instead of rebuilding everything as a full
//! reload does. Deltas are id-based — facts reference dictionary-encoded
//! ids, exactly like the ABox itself — plus the list of individual names
//! the batch interns, so a logged delta is self-contained: replaying
//! `snapshot + WAL` reproduces both the facts and the dictionary.
//!
//! Batch semantics (the order [`crate::ABox::apply`] commits a batch):
//! **insertions first, then deletions**. A fact both inserted and deleted
//! in one batch therefore ends up absent. Inserting an existing fact and
//! deleting a missing fact are no-ops (the ABox is a set); the *effective*
//! sub-delta — what actually changed — is returned by `apply` so storage
//! layouts and statistics can be maintained exactly.

use crate::ids::{ConceptId, IndividualId, RoleId};

/// A batch of ABox changes (and the individual names it interns).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct AboxDelta {
    /// Individual names this batch adds to the [`crate::Vocabulary`], in
    /// allocation order. Interned *before* the facts are applied, so the
    /// fact vectors may reference the resulting fresh ids. Concept and
    /// role names are fixed by the ontology at store-creation time and
    /// cannot be introduced by a delta.
    pub new_individuals: Vec<String>,
    /// Concept assertions `A(a)` to insert.
    pub insert_concepts: Vec<(ConceptId, IndividualId)>,
    /// Concept assertions to delete (applied after all insertions).
    pub delete_concepts: Vec<(ConceptId, IndividualId)>,
    /// Role assertions `R(a, b)` to insert.
    pub insert_roles: Vec<(RoleId, IndividualId, IndividualId)>,
    /// Role assertions to delete (applied after all insertions).
    pub delete_roles: Vec<(RoleId, IndividualId, IndividualId)>,
}

impl AboxDelta {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of change entries (interned names excluded).
    pub fn len(&self) -> usize {
        self.insert_concepts.len()
            + self.delete_concepts.len()
            + self.insert_roles.len()
            + self.delete_roles.len()
    }

    /// `true` when the batch changes nothing and interns nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0 && self.new_individuals.is_empty()
    }

    /// Builder: insert `A(a)`.
    pub fn insert_concept(mut self, c: ConceptId, a: IndividualId) -> Self {
        self.insert_concepts.push((c, a));
        self
    }

    /// Builder: delete `A(a)`.
    pub fn delete_concept(mut self, c: ConceptId, a: IndividualId) -> Self {
        self.delete_concepts.push((c, a));
        self
    }

    /// Builder: insert `R(a, b)`.
    pub fn insert_role(mut self, r: RoleId, a: IndividualId, b: IndividualId) -> Self {
        self.insert_roles.push((r, a, b));
        self
    }

    /// Builder: delete `R(a, b)`.
    pub fn delete_role(mut self, r: RoleId, a: IndividualId, b: IndividualId) -> Self {
        self.delete_roles.push((r, a, b));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abox::ABox;
    use crate::vocab::Vocabulary;

    #[test]
    fn builder_and_counts() {
        let d = AboxDelta::new()
            .insert_concept(ConceptId(0), IndividualId(1))
            .delete_role(RoleId(2), IndividualId(3), IndividualId(4));
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert!(AboxDelta::new().is_empty());
    }

    #[test]
    fn insert_then_delete_in_one_batch_ends_absent() {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let x = voc.individual("x");
        let mut abox = ABox::new();
        let d = AboxDelta::new().insert_concept(a, x).delete_concept(a, x);
        let eff = abox.apply(&d);
        assert!(!abox.has_concept(a, x), "deletions commit after insertions");
        // Both operations took effect (the insert was new, the delete hit).
        assert_eq!(eff.insert_concepts, vec![(a, x)]);
        assert_eq!(eff.delete_concepts, vec![(a, x)]);
    }
}
