//! String interning for concept, role and individual names.
//!
//! The paper's experimental setting dictionary-encodes all facts into
//! integers before storing them in the RDBMS (§6.1, "simple layout"); the
//! [`Vocabulary`] is that dictionary, shared by the TBox, the ABox, queries
//! and the storage engine.

use std::collections::HashMap;

use crate::ids::{ConceptId, IndividualId, PredId, RoleId};

/// A bidirectional name ↔ dense-id map for one namespace.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct Interner {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    fn get(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(|s| s.as_str())
    }

    fn len(&self) -> usize {
        self.names.len()
    }
}

/// The three vocabularies `NC`, `NR`, `NI` of a knowledge base.
///
/// Interning is append-only: ids are dense, stable, and allocation order is
/// deterministic given insertion order, which keeps data generation and test
/// fixtures reproducible.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Vocabulary {
    concepts: Interner,
    roles: Interner,
    individuals: Interner,
}

impl Vocabulary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a concept name, returning its id (existing or fresh).
    pub fn concept(&mut self, name: &str) -> ConceptId {
        ConceptId(self.concepts.intern(name))
    }

    /// Intern a role name, returning its id (existing or fresh).
    pub fn role(&mut self, name: &str) -> RoleId {
        RoleId(self.roles.intern(name))
    }

    /// Intern an individual name, returning its id (existing or fresh).
    pub fn individual(&mut self, name: &str) -> IndividualId {
        IndividualId(self.individuals.intern(name))
    }

    /// Look up an already-interned concept.
    pub fn find_concept(&self, name: &str) -> Option<ConceptId> {
        self.concepts.get(name).map(ConceptId)
    }

    /// Look up an already-interned role.
    pub fn find_role(&self, name: &str) -> Option<RoleId> {
        self.roles.get(name).map(RoleId)
    }

    /// Look up an already-interned individual.
    pub fn find_individual(&self, name: &str) -> Option<IndividualId> {
        self.individuals.get(name).map(IndividualId)
    }

    pub fn concept_name(&self, id: ConceptId) -> &str {
        self.concepts.name(id.0).unwrap_or("<unknown-concept>")
    }

    pub fn role_name(&self, id: RoleId) -> &str {
        self.roles.name(id.0).unwrap_or("<unknown-role>")
    }

    pub fn individual_name(&self, id: IndividualId) -> &str {
        self.individuals
            .name(id.0)
            .unwrap_or("<unknown-individual>")
    }

    pub fn pred_name(&self, id: PredId) -> &str {
        match id {
            PredId::Concept(c) => self.concept_name(c),
            PredId::Role(r) => self.role_name(r),
        }
    }

    pub fn num_concepts(&self) -> usize {
        self.concepts.len()
    }

    pub fn num_roles(&self) -> usize {
        self.roles.len()
    }

    pub fn num_individuals(&self) -> usize {
        self.individuals.len()
    }

    /// Total number of predicate names (`|NC| + |NR|`), the width of
    /// dependency bitsets.
    pub fn num_preds(&self) -> usize {
        self.num_concepts() + self.num_roles()
    }

    /// Iterate over all concept ids in allocation order.
    pub fn concept_ids(&self) -> impl Iterator<Item = ConceptId> {
        (0..self.num_concepts() as u32).map(ConceptId)
    }

    /// Iterate over all role ids in allocation order.
    pub fn role_ids(&self) -> impl Iterator<Item = RoleId> {
        (0..self.num_roles() as u32).map(RoleId)
    }

    /// Iterate over all individual ids in allocation order.
    pub fn individual_ids(&self) -> impl Iterator<Item = IndividualId> {
        (0..self.num_individuals() as u32).map(IndividualId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.concept("Researcher");
        let b = v.concept("Researcher");
        assert_eq!(a, b);
        assert_eq!(v.num_concepts(), 1);
    }

    #[test]
    fn namespaces_are_disjoint() {
        let mut v = Vocabulary::new();
        let c = v.concept("worksWith");
        let r = v.role("worksWith");
        // Same string, different namespaces, both id 0 in their own space.
        assert_eq!(c.0, 0);
        assert_eq!(r.0, 0);
        assert_eq!(v.num_concepts(), 1);
        assert_eq!(v.num_roles(), 1);
    }

    #[test]
    fn lookup_roundtrip() {
        let mut v = Vocabulary::new();
        let c = v.concept("PhDStudent");
        let r = v.role("supervisedBy");
        let i = v.individual("Damian");
        assert_eq!(v.concept_name(c), "PhDStudent");
        assert_eq!(v.role_name(r), "supervisedBy");
        assert_eq!(v.individual_name(i), "Damian");
        assert_eq!(v.find_concept("PhDStudent"), Some(c));
        assert_eq!(v.find_role("supervisedBy"), Some(r));
        assert_eq!(v.find_individual("Damian"), Some(i));
        assert_eq!(v.find_concept("Nope"), None);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocabulary::new();
        let ids: Vec<ConceptId> = ["A", "B", "C"].iter().map(|n| v.concept(n)).collect();
        assert_eq!(ids, vec![ConceptId(0), ConceptId(1), ConceptId(2)]);
        let all: Vec<ConceptId> = v.concept_ids().collect();
        assert_eq!(all, ids);
    }

    #[test]
    fn pred_name_dispatches() {
        let mut v = Vocabulary::new();
        let c = v.concept("A");
        let r = v.role("r");
        assert_eq!(v.pred_name(PredId::Concept(c)), "A");
        assert_eq!(v.pred_name(PredId::Role(r)), "r");
    }
}
