//! DL-LiteR concept and role expressions.
//!
//! Following §2.1: given a role `R`, its inverse `R⁻` denotes
//! `{(b, a) | R(a, b) ∈ A}`, and `N±R = NR ∪ {r⁻ | r ∈ NR}`. A basic concept
//! is either an atomic concept from `NC` or an unqualified existential
//! restriction `∃R` for `R ∈ N±R` (the projection on the first attribute of
//! `R`).

use std::fmt;

use crate::ids::{ConceptId, PredId, RoleId};
use crate::vocab::Vocabulary;

/// A role or its inverse: an element of `N±R`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Role {
    pub name: RoleId,
    /// `true` for `R⁻`, i.e. the set of pairs of `R` with attributes swapped.
    pub inverse: bool,
}

impl Role {
    pub fn direct(name: RoleId) -> Self {
        Role {
            name,
            inverse: false,
        }
    }

    pub fn inv(name: RoleId) -> Self {
        Role {
            name,
            inverse: true,
        }
    }

    /// The inverse of this role expression: `(R)⁻ = R⁻`, `(R⁻)⁻ = R`.
    pub fn inverted(self) -> Self {
        Role {
            name: self.name,
            inverse: !self.inverse,
        }
    }

    /// `cr(·)` of Definition 4 applied to a role expression: the underlying
    /// role *name*.
    pub fn cr(self) -> PredId {
        PredId::Role(self.name)
    }

    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Role, &'a Vocabulary);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.1.role_name(self.0.name))?;
                if self.0.inverse {
                    write!(f, "-")?;
                }
                Ok(())
            }
        }
        D(self, voc)
    }
}

/// A basic concept: `A ∈ NC`, or `∃R` for `R ∈ N±R`.
///
/// These are the only expressions allowed on either side of a DL-LiteR
/// concept inclusion (negation, allowed on the right-hand side only, is
/// carried by the axiom, not the expression — see [`crate::axiom`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum BasicConcept {
    /// An atomic concept `A`.
    Atomic(ConceptId),
    /// `∃R` — the set of constants occurring in the first position of `R`.
    /// `∃R⁻` is represented as `Exists(Role { inverse: true, .. })`.
    Exists(Role),
}

impl BasicConcept {
    pub fn atomic(c: ConceptId) -> Self {
        BasicConcept::Atomic(c)
    }

    pub fn exists(r: Role) -> Self {
        BasicConcept::Exists(r)
    }

    /// `cr(·)` of Definition 4: the underlying concept or role *name*
    /// (`cr(A) = A`, `cr(∃R) = cr(∃R⁻) = R`).
    pub fn cr(self) -> PredId {
        match self {
            BasicConcept::Atomic(c) => PredId::Concept(c),
            BasicConcept::Exists(r) => r.cr(),
        }
    }

    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> impl fmt::Display + 'a {
        struct D<'a>(&'a BasicConcept, &'a Vocabulary);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self.0 {
                    BasicConcept::Atomic(c) => write!(f, "{}", self.1.concept_name(*c)),
                    BasicConcept::Exists(r) => write!(f, "exists {}", r.display(self.1)),
                }
            }
        }
        D(self, voc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_inversion_is_identity() {
        let r = Role::direct(RoleId(3));
        assert_eq!(r.inverted().inverted(), r);
        assert_eq!(r.inverted(), Role::inv(RoleId(3)));
    }

    #[test]
    fn cr_strips_structure() {
        let r = Role::inv(RoleId(2));
        assert_eq!(r.cr(), PredId::Role(RoleId(2)));
        assert_eq!(
            BasicConcept::Exists(r).cr(),
            PredId::Role(RoleId(2)),
            "cr(∃R⁻) is the role name R"
        );
        assert_eq!(
            BasicConcept::Atomic(ConceptId(7)).cr(),
            PredId::Concept(ConceptId(7))
        );
    }

    #[test]
    fn display_uses_vocabulary_names() {
        let mut v = Vocabulary::new();
        let sup = v.role("supervisedBy");
        let phd = v.concept("PhDStudent");
        assert_eq!(Role::inv(sup).display(&v).to_string(), "supervisedBy-");
        assert_eq!(
            BasicConcept::Exists(Role::direct(sup))
                .display(&v)
                .to_string(),
            "exists supervisedBy"
        );
        assert_eq!(
            BasicConcept::Atomic(phd).display(&v).to_string(),
            "PhDStudent"
        );
    }
}
