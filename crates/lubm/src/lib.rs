//! # obda-lubm
//!
//! The benchmark substrate: a LUBM∃-style university ontology
//! ([`UnivOntology`], ~128 concepts / ~34 roles / ~212 DL-LiteR
//! constraints), an EUDG-like deterministic data generator producing
//! deliberately *incomplete* ABoxes ([`generate`]), and the workload
//! queries Q1–Q13 plus the A3–A6 star family of the paper's evaluation
//! ([`workload`], [`star_query`]).

pub mod generator;
pub mod queries;
pub mod tbox;

pub use generator::{generate, GenConfig, GenReport};
pub use queries::{q1, star_query, workload, WorkloadQuery};
pub use tbox::{OntologyDimensions, UnivOntology, FIELDS};
