//! EUDG-like scalable data generation (Lutz et al. \[23\]).
//!
//! Generates university ABoxes under [`crate::tbox::UnivOntology`]. Two
//! properties matter for the evaluation:
//!
//! * **scale** — the paper uses 15M- and 100M-fact ABoxes; the generator
//!   takes a target fact count and emits universities until it is reached;
//! * **incompleteness** — reformulation only pays off when data is *not*
//!   saturated: the generator asserts most-specific types only (never the
//!   implied supertypes), sometimes asserts a *general* type without the
//!   specific one, randomly orients symmetric/inverse facts (authorOf vs
//!   publicationAuthor), and drops a fraction of role facts whose
//!   existence is still implied by existential axioms.
//!
//! Generation is fully deterministic given the seed.

use obda_dllite::{ABox, IndividualId};
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

use crate::tbox::{UnivOntology, FIELDS};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct GenConfig {
    pub seed: u64,
    /// Stop once at least this many facts were asserted.
    pub target_facts: usize,
    /// Probability of asserting only the general type (e.g. `Professor`
    /// instead of `FullProfessor`).
    pub general_type_prob: f64,
    /// Probability of omitting an implied role fact (left to the ∃ axioms).
    pub omit_role_prob: f64,
    pub departments_per_university: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 42,
            target_facts: 50_000,
            general_type_prob: 0.15,
            omit_role_prob: 0.2,
            departments_per_university: 12,
        }
    }
}

/// Generation summary (sanity numbers for EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, Default)]
pub struct GenReport {
    pub universities: usize,
    pub departments: usize,
    pub faculty: usize,
    pub students: usize,
    pub publications: usize,
    pub facts: usize,
}

/// Generate an ABox over the ontology.
pub fn generate(onto: &mut UnivOntology, config: &GenConfig) -> (ABox, GenReport) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut abox = ABox::new();
    let mut report = GenReport::default();
    let mut uni_idx = 0usize;
    while abox.len() < config.target_facts {
        generate_university(onto, config, &mut rng, &mut abox, uni_idx, &mut report);
        uni_idx += 1;
    }
    report.universities = uni_idx;
    report.facts = abox.len();
    (abox, report)
}

fn ind(onto: &mut UnivOntology, name: String) -> IndividualId {
    onto.voc.individual(&name)
}

#[allow(clippy::too_many_arguments)]
fn generate_university(
    onto: &mut UnivOntology,
    config: &GenConfig,
    rng: &mut StdRng,
    abox: &mut ABox,
    u: usize,
    report: &mut GenReport,
) {
    let univ = ind(onto, format!("Univ{u}"));
    abox.assert_concept(onto.university, univ);

    let n_depts = config.departments_per_university.max(1);
    for d in 0..n_depts {
        report.departments += 1;
        let dept = ind(onto, format!("U{u}D{d}"));
        abox.assert_concept(onto.department, dept);
        abox.assert_role(onto.sub_organization_of, dept, univ);
        let field = FIELDS[d % FIELDS.len()];

        // Research group.
        let group = ind(onto, format!("U{u}D{d}G0"));
        abox.assert_concept(onto.field_concept(field, "ResearchGroup"), group);
        if !rng.random_bool(config.omit_role_prob) {
            abox.assert_role(onto.sub_organization_of, group, dept);
        }

        // Courses: regular + graduate + field seminars.
        let n_courses = rng.random_range(8..14);
        let mut courses = Vec::with_capacity(n_courses);
        for c in 0..n_courses {
            let course = ind(onto, format!("U{u}D{d}C{c}"));
            let cls = match c % 4 {
                0 => onto.graduate_course,
                1 => onto.field_concept(field, "Course"),
                2 => onto.field_concept(field, "Seminar"),
                _ => onto.course,
            };
            abox.assert_concept(cls, course);
            if !rng.random_bool(config.omit_role_prob) {
                abox.assert_role(onto.offers_course, dept, course);
            }
            courses.push(course);
        }

        // Faculty.
        let n_full = rng.random_range(3..6);
        let n_assoc = rng.random_range(3..6);
        let n_assist = rng.random_range(2..5);
        let n_lect = rng.random_range(2..4);
        let mut faculty = Vec::new();
        let tiers = [
            (onto.full_professor, n_full),
            (onto.associate_professor, n_assoc),
            (onto.assistant_professor, n_assist),
            (onto.lecturer, n_lect),
        ];
        let mut fi = 0usize;
        for (cls, count) in tiers {
            for _ in 0..count {
                report.faculty += 1;
                let f = ind(onto, format!("U{u}D{d}F{fi}"));
                fi += 1;
                // Most-specific typing, occasionally generalized.
                if rng.random_bool(config.general_type_prob) {
                    abox.assert_concept(onto.professor, f);
                } else {
                    abox.assert_concept(cls, f);
                }
                if !rng.random_bool(config.omit_role_prob) {
                    abox.assert_role(onto.works_for, f, dept);
                }
                // Teaching.
                for _ in 0..rng.random_range(1..3) {
                    let c = courses[rng.random_range(0..courses.len())];
                    if !rng.random_bool(config.omit_role_prob) {
                        abox.assert_role(onto.teacher_of, f, c);
                    }
                }
                // Degrees.
                if !rng.random_bool(config.omit_role_prob) {
                    abox.assert_role(onto.doctoral_degree_from, f, univ);
                }
                // Direct university affiliation for some faculty
                // (affiliatedWith ⊑ memberOf feeds Q5).
                if rng.random_bool(0.3) {
                    abox.assert_role(onto.affiliated_with, f, univ);
                }
                // Research interest.
                let proj = ind(onto, format!("U{u}D{d}P{fi}"));
                abox.assert_concept(onto.field_concept(field, "Project"), proj);
                if !rng.random_bool(config.omit_role_prob) {
                    abox.assert_role(onto.research_interest, f, proj);
                }
                faculty.push(f);
            }
        }
        // Chair: the first full professor heads the department.
        if let Some(&head) = faculty.first() {
            abox.assert_concept(onto.chair, head);
            abox.assert_role(onto.head_of, head, dept);
        }
        // Faculty collaboration (symmetric via worksWith ⊑ worksWith⁻).
        for i in 1..faculty.len() {
            if rng.random_bool(0.3) {
                let j = rng.random_range(0..i);
                abox.assert_role(onto.collaborates_with, faculty[i], faculty[j]);
            }
        }

        // Students.
        let n_grad = rng.random_range(8..14);
        let n_under = rng.random_range(20..30);
        for s in 0..n_grad {
            report.students += 1;
            let st = ind(onto, format!("U{u}D{d}GS{s}"));
            let cls = match s % 5 {
                0 => onto.research_assistant,
                1 => onto.teaching_assistant,
                _ => onto.graduate_student,
            };
            if rng.random_bool(config.general_type_prob) {
                abox.assert_concept(onto.student, st);
            } else {
                abox.assert_concept(cls, st);
            }
            if !rng.random_bool(config.omit_role_prob) {
                abox.assert_role(onto.member_of, st, dept);
            }
            // Advisor (implied by GraduateStudent ⊑ ∃advisor when omitted).
            if !faculty.is_empty() && !rng.random_bool(config.omit_role_prob) {
                let a = faculty[rng.random_range(0..faculty.len())];
                abox.assert_role(onto.advisor, st, a);
            }
            for _ in 0..rng.random_range(1..4) {
                let c = courses[rng.random_range(0..courses.len())];
                if !rng.random_bool(config.omit_role_prob) {
                    abox.assert_role(onto.takes_course, st, c);
                }
            }
            if s % 5 == 1 && !courses.is_empty() {
                // A "busy" teaching assistant: the Q1 profile (teaches a
                // seminar, assists, researches, collaborates, publishes).
                let c = courses[rng.random_range(0..courses.len())];
                abox.assert_role(onto.teaching_assistant_of, st, c);
                let taught = courses[rng.random_range(0..courses.len())];
                abox.assert_role(onto.teacher_of, st, taught);
                let proj = ind(onto, format!("U{u}D{d}TAProj{s}"));
                abox.assert_concept(onto.field_concept(field, "Project"), proj);
                abox.assert_role(onto.research_interest, st, proj);
                if !faculty.is_empty() {
                    let f = faculty[rng.random_range(0..faculty.len())];
                    abox.assert_role(onto.collaborates_with, st, f);
                }
                let pb = ind(onto, format!("U{u}D{d}TAPub{s}"));
                abox.assert_concept(onto.conference_paper, pb);
                abox.assert_role(onto.author_of, st, pb);
            }
            if !rng.random_bool(config.omit_role_prob) {
                abox.assert_role(onto.undergraduate_degree_from, st, univ);
            }
        }
        for s in 0..n_under {
            report.students += 1;
            let st = ind(onto, format!("U{u}D{d}US{s}"));
            if rng.random_bool(config.general_type_prob) {
                abox.assert_concept(onto.student, st);
            } else {
                abox.assert_concept(onto.undergraduate_student, st);
            }
            for _ in 0..rng.random_range(2..5) {
                let c = courses[rng.random_range(0..courses.len())];
                if !rng.random_bool(config.omit_role_prob) {
                    abox.assert_role(onto.takes_course, st, c);
                }
            }
        }

        // Publications: authored by faculty (and grad students).
        let n_pubs = rng.random_range(10..18);
        for p in 0..n_pubs {
            report.publications += 1;
            let pb = ind(onto, format!("U{u}D{d}Pub{p}"));
            let cls = match p % 6 {
                0 => onto.journal_article,
                1 => onto.conference_paper,
                2 => onto.technical_report,
                3 => onto.book,
                4 => onto.doctoral_thesis,
                _ => onto.article,
            };
            abox.assert_concept(cls, pb);
            if faculty.is_empty() {
                continue;
            }
            let author = faculty[rng.random_range(0..faculty.len())];
            // Randomly orient the authorship fact: the role hierarchy
            // (authorOf ≡ publicationAuthor⁻) bridges the two at query
            // time.
            if rng.random_bool(0.5) {
                abox.assert_role(onto.publication_author, pb, author);
            } else {
                abox.assert_role(onto.author_of, author, pb);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig {
            target_facts: 3000,
            ..Default::default()
        };
        let mut o1 = UnivOntology::build();
        let (a1, _) = generate(&mut o1, &cfg);
        let mut o2 = UnivOntology::build();
        let (a2, _) = generate(&mut o2, &cfg);
        assert_eq!(a1.len(), a2.len());
        assert_eq!(a1.concept_assertions(), a2.concept_assertions());
        assert_eq!(a1.role_assertions(), a2.role_assertions());
    }

    #[test]
    fn reaches_target_scale() {
        let cfg = GenConfig {
            target_facts: 5000,
            ..Default::default()
        };
        let mut onto = UnivOntology::build();
        let (abox, report) = generate(&mut onto, &cfg);
        assert!(abox.len() >= 5000);
        assert!(report.universities >= 1);
        assert!(report.faculty > 0 && report.students > 0);
    }

    #[test]
    fn data_is_consistent_with_the_ontology() {
        let cfg = GenConfig {
            target_facts: 4000,
            ..Default::default()
        };
        let mut onto = UnivOntology::build();
        let (abox, _) = generate(&mut onto, &cfg);
        assert!(obda_dllite::is_consistent(&onto.voc, &onto.tbox, &abox));
    }

    #[test]
    fn data_is_incomplete_wrt_reasoning() {
        // The generator must leave reasoning work on the table: some
        // FullProfessor has no explicit worksFor fact (implied via
        // Employee ⊑ ∃worksFor), and no Person facts are asserted at all.
        let cfg = GenConfig {
            target_facts: 4000,
            ..Default::default()
        };
        let mut onto = UnivOntology::build();
        let (abox, _) = generate(&mut onto, &cfg);
        let persons = abox.concept_members(onto.person).count();
        assert_eq!(persons, 0, "supertypes are never asserted");
        let full_profs: Vec<_> = abox.concept_members(onto.full_professor).collect();
        assert!(!full_profs.is_empty());
        let missing_works_for = full_profs
            .iter()
            .filter(|&&f| !abox.role_pairs(onto.works_for).any(|(s, _)| s == f))
            .count();
        assert!(missing_works_for > 0, "some faculty lack explicit worksFor");
    }

    #[test]
    fn authorship_is_split_across_orientations() {
        let cfg = GenConfig {
            target_facts: 8000,
            ..Default::default()
        };
        let mut onto = UnivOntology::build();
        let (abox, _) = generate(&mut onto, &cfg);
        let fwd = abox.role_pairs(onto.publication_author).count();
        let bwd = abox.role_pairs(onto.author_of).count();
        assert!(fwd > 0 && bwd > 0, "both orientations present: {fwd}/{bwd}");
    }
}
