//! The workload: queries Q1–Q13 (§6.1: 2–10 atoms, average ≈5.8, UCQ
//! reformulations from tens to hundreds of CQs) and the star queries
//! A3–A6 derived from Q1 for the search-space study (Table 6; A6 = Q1).
//!
//! The paper's exact queries live in its unavailable technical report;
//! these are rebuilt against the rebuilt ontology to match the reported
//! *statistics* (atom counts, reformulation sizes, presence of a 2-atom
//! query with the largest reformulation — Q11). Actual sizes are printed
//! by the `workload_stats` harness and recorded in EXPERIMENTS.md.

use obda_query::{Atom, Term, VarId, CQ};

use crate::tbox::UnivOntology;

/// A named workload query.
#[derive(Clone, Debug)]
pub struct WorkloadQuery {
    pub name: String,
    pub cq: CQ,
}

fn v(i: u32) -> Term {
    Term::Var(VarId(i))
}

/// Q1: the six-atom star over a single subject (A6 = Q1) — the profile of
/// a "busy" teaching assistant: teaches, studies, researches,
/// collaborates, publishes, assists.
pub fn q1(onto: &UnivOntology) -> CQ {
    // q(x) ← teacherOf(x,y1) ∧ takesCourse(x,y2) ∧ researchInterest(x,y3)
    //        ∧ collaboratesWith(x,y4) ∧ authorOf(x,y5)
    //        ∧ teachingAssistantOf(x,y6)
    CQ::with_var_head(
        vec![VarId(0)],
        vec![
            Atom::Role(onto.teacher_of, v(0), v(1)),
            Atom::Role(onto.takes_course, v(0), v(2)),
            Atom::Role(onto.research_interest, v(0), v(3)),
            Atom::Role(onto.collaborates_with, v(0), v(4)),
            Atom::Role(onto.author_of, v(0), v(5)),
            Atom::Role(onto.teaching_assistant_of, v(0), v(6)),
        ],
    )
}

/// The star-query family A3..A6 (prefixes of Q1's atom list).
pub fn star_query(onto: &UnivOntology, arity: usize) -> CQ {
    assert!((2..=6).contains(&arity));
    let full = q1(onto);
    CQ::with_var_head(vec![VarId(0)], full.atoms()[..arity].to_vec())
}

/// The full workload Q1–Q13.
pub fn workload(onto: &UnivOntology) -> Vec<WorkloadQuery> {
    let mut qs: Vec<WorkloadQuery> = Vec::with_capacity(13);
    let mut push = |name: &str, cq: CQ| {
        qs.push(WorkloadQuery {
            name: name.into(),
            cq,
        })
    };

    push("Q1", q1(onto));

    // Q2 (4 atoms): graduate students with a professor advisor in a
    // department.
    push(
        "Q2",
        CQ::with_var_head(
            vec![VarId(0), VarId(1)],
            vec![
                Atom::Concept(onto.graduate_student, v(0)),
                Atom::Role(onto.advisor, v(0), v(1)),
                Atom::Concept(onto.professor, v(1)),
                Atom::Role(onto.works_for, v(1), v(2)),
            ],
        ),
    );

    // Q3 (5 atoms): students taking a graduate course offered by a
    // department.
    push(
        "Q3",
        CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(onto.student, v(0)),
                Atom::Role(onto.takes_course, v(0), v(1)),
                Atom::Concept(onto.graduate_course, v(1)),
                Atom::Role(onto.offers_course, v(2), v(1)),
                Atom::Concept(onto.department, v(2)),
            ],
        ),
    );

    // Q4 (4 atoms): faculty of departments of a university.
    push(
        "Q4",
        CQ::with_var_head(
            vec![VarId(0), VarId(1)],
            vec![
                Atom::Concept(onto.faculty, v(0)),
                Atom::Role(onto.works_for, v(0), v(1)),
                Atom::Concept(onto.department, v(1)),
                Atom::Role(onto.sub_organization_of, v(1), v(2)),
            ],
        ),
    );

    // Q5 (3 atoms, fat person cone): members of universities.
    push(
        "Q5",
        CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(onto.person, v(0)),
                Atom::Role(onto.member_of, v(0), v(1)),
                Atom::Concept(onto.university, v(1)),
            ],
        ),
    );

    // Q6 (6 atoms): articles of professors and their departments.
    push(
        "Q6",
        CQ::with_var_head(
            vec![VarId(0), VarId(1)],
            vec![
                Atom::Concept(onto.article, v(0)),
                Atom::Role(onto.publication_author, v(0), v(1)),
                Atom::Concept(onto.professor, v(1)),
                Atom::Role(onto.works_for, v(1), v(2)),
                Atom::Concept(onto.department, v(2)),
                Atom::Role(onto.sub_organization_of, v(2), v(3)),
            ],
        ),
    );

    // Q7 (4 atoms): research groups inside organizations.
    push(
        "Q7",
        CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(onto.organization, v(0)),
                Atom::Role(onto.sub_organization_of, v(1), v(0)),
                Atom::Concept(onto.research_group, v(1)),
                Atom::Role(onto.sub_organization_of, v(0), v(2)),
            ],
        ),
    );

    // Q8 (6 atoms): the student–advisor–course triangle.
    push(
        "Q8",
        CQ::with_var_head(
            vec![VarId(0), VarId(1)],
            vec![
                Atom::Concept(onto.student, v(0)),
                Atom::Role(onto.advisor, v(0), v(2)),
                Atom::Concept(onto.professor, v(2)),
                Atom::Role(onto.teacher_of, v(2), v(1)),
                Atom::Role(onto.takes_course, v(0), v(1)),
                Atom::Concept(onto.graduate_course, v(1)),
            ],
        ),
    );

    // Q9 (5 atoms): publications authored by chairs with a degree — the
    // heavyweight reformulation of the workload (paper: Q9's minimal UCQ
    // is a union of 145 CQs).
    push(
        "Q9",
        CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(onto.publication, v(2)),
                Atom::Role(onto.publication_author, v(2), v(0)),
                Atom::Concept(onto.chair, v(0)),
                Atom::Role(onto.degree_from, v(0), v(3)),
                Atom::Concept(onto.university, v(3)),
            ],
        ),
    );

    // Q10 (10 atoms): the two-hub faculty/department pattern.
    push(
        "Q10",
        CQ::with_var_head(
            vec![VarId(0), VarId(1)],
            vec![
                Atom::Role(onto.works_for, v(0), v(1)),
                Atom::Concept(onto.department, v(1)),
                Atom::Role(onto.sub_organization_of, v(1), v(2)),
                Atom::Concept(onto.university, v(2)),
                Atom::Role(onto.teacher_of, v(0), v(3)),
                Atom::Concept(onto.graduate_course, v(3)),
                Atom::Role(onto.takes_course, v(4), v(3)),
                Atom::Concept(onto.graduate_student, v(4)),
                Atom::Role(onto.advisor, v(4), v(0)),
                Atom::Role(onto.member_of, v(4), v(1)),
            ],
        ),
    );

    // Q11 (2 atoms, maximal reformulation): people and who they work with
    // — worksWith is symmetric with several subroles, Person's cone is the
    // widest in the ontology (cf. §6.2: Q11 has 2 atoms but the maximum
    // number of reformulations).
    push(
        "Q11",
        CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(onto.person, v(0)),
                Atom::Role(onto.works_with, v(1), v(0)),
            ],
        ),
    );

    // Q12 (5 atoms, selective): chairs and the universities their
    // departments belong to.
    push(
        "Q12",
        CQ::with_var_head(
            vec![VarId(0), VarId(2)],
            vec![
                Atom::Concept(onto.chair, v(0)),
                Atom::Role(onto.head_of, v(0), v(1)),
                Atom::Concept(onto.department, v(1)),
                Atom::Role(onto.sub_organization_of, v(1), v(2)),
                Atom::Concept(onto.university, v(2)),
            ],
        ),
    );

    // Q13 (7 atoms, cyclic): teaching professors with a degree from the
    // university their department belongs to.
    push(
        "Q13",
        CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(onto.professor, v(0)),
                Atom::Role(onto.member_of, v(0), v(1)),
                Atom::Concept(onto.department, v(1)),
                Atom::Role(onto.sub_organization_of, v(1), v(2)),
                Atom::Concept(onto.university, v(2)),
                Atom::Role(onto.degree_from, v(0), v(2)),
                Atom::Role(onto.teacher_of, v(0), v(3)),
            ],
        ),
    );

    qs
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_reform::perfect_ref;

    #[test]
    fn workload_shape_matches_paper() {
        let onto = UnivOntology::build();
        let qs = workload(&onto);
        assert_eq!(qs.len(), 13);
        let sizes: Vec<usize> = qs.iter().map(|q| q.cq.num_atoms()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert_eq!(min, 2, "smallest query has 2 atoms (Q11)");
        assert_eq!(max, 10, "largest query has 10 atoms (Q10)");
        let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(
            (4.5..=7.0).contains(&avg),
            "average atom count ≈5.8, got {avg}"
        );
        for q in &qs {
            assert!(q.cq.is_connected(), "{} must be connected", q.name);
        }
    }

    #[test]
    fn star_queries_are_prefixes_of_q1() {
        let onto = UnivOntology::build();
        let q1 = q1(&onto);
        for n in 3..=6 {
            let a = star_query(&onto, n);
            assert_eq!(a.num_atoms(), n);
            assert_eq!(a.atoms(), &q1.atoms()[..n]);
            assert!(a.is_connected());
        }
        assert_eq!(star_query(&onto, 6).atoms(), q1.atoms());
    }

    #[test]
    fn reformulation_sizes_span_a_wide_range() {
        // §6.1: UCQ reformulations between 35 and 667 CQs. The rebuilt
        // ontology must produce the same *regime*: small queries tens,
        // fat-concept queries hundreds.
        let onto = UnivOntology::build();
        let qs = workload(&onto);
        let mut sizes = Vec::new();
        for q in &qs {
            // Only measure the cheap ones here (full sweep in the harness).
            if q.cq.num_atoms() <= 3 {
                sizes.push(perfect_ref(&q.cq, &onto.tbox).len());
            }
        }
        let max = sizes.iter().max().copied().unwrap_or(0);
        assert!(
            max >= 100,
            "Q5/Q11-style queries reformulate into 100s: {sizes:?}"
        );
    }

    #[test]
    fn q11_has_two_atoms_and_large_reformulation() {
        let onto = UnivOntology::build();
        let qs = workload(&onto);
        let q11 = qs.iter().find(|q| q.name == "Q11").unwrap();
        assert_eq!(q11.cq.num_atoms(), 2);
        let ucq = perfect_ref(&q11.cq, &onto.tbox);
        assert!(
            ucq.len() > 200,
            "Q11 reformulation is the largest: {}",
            ucq.len()
        );
    }
}
