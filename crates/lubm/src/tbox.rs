//! The university ontology: a DL-LiteR TBox in the style of LUBM∃ (the
//! existential-enriched LUBM used with the EUDG generator \[23\]).
//!
//! The paper reports 34 roles, 128 concepts and 212 constraints (§6.1);
//! this ontology is rebuilt to the same dimensions: a deep person/
//! organization/publication concept tree, domain and range constraints for
//! every role, existential axioms (the "∃" of LUBM∃ — e.g. every professor
//! teaches something, every graduate student has an advisor), a role
//! hierarchy exercising inverse inclusions, and a handful of disjointness
//! constraints. Exact counts are exposed by [`UnivOntology::dimensions`]
//! and recorded in EXPERIMENTS.md.

use obda_dllite::{ConceptId, RoleId, TBox, TBoxBuilder, Vocabulary};

/// The research fields used to widen the concept tree (LUBM∃ reaches 128
/// concepts through such specializations).
pub const FIELDS: [&str; 10] = [
    "AI", "DB", "Systems", "Theory", "Networks", "Graphics", "HCI", "SE", "Security", "Bio",
];

/// The university ontology with all ids resolved for fast access by the
/// generator and the workload queries.
pub struct UnivOntology {
    pub voc: Vocabulary,
    pub tbox: TBox,
    // -- key concepts ---------------------------------------------------
    pub person: ConceptId,
    pub employee: ConceptId,
    pub faculty: ConceptId,
    pub professor: ConceptId,
    pub full_professor: ConceptId,
    pub associate_professor: ConceptId,
    pub assistant_professor: ConceptId,
    pub visiting_professor: ConceptId,
    pub chair: ConceptId,
    pub dean: ConceptId,
    pub lecturer: ConceptId,
    pub postdoc: ConceptId,
    pub student: ConceptId,
    pub undergraduate_student: ConceptId,
    pub graduate_student: ConceptId,
    pub research_assistant: ConceptId,
    pub teaching_assistant: ConceptId,
    pub organization: ConceptId,
    pub university: ConceptId,
    pub department: ConceptId,
    pub institute: ConceptId,
    pub research_group: ConceptId,
    pub program: ConceptId,
    pub course: ConceptId,
    pub graduate_course: ConceptId,
    pub publication: ConceptId,
    pub article: ConceptId,
    pub journal_article: ConceptId,
    pub conference_paper: ConceptId,
    pub book: ConceptId,
    pub technical_report: ConceptId,
    pub thesis: ConceptId,
    pub masters_thesis: ConceptId,
    pub doctoral_thesis: ConceptId,
    pub software: ConceptId,
    // -- key roles -------------------------------------------------------
    pub works_for: RoleId,
    pub member_of: RoleId,
    pub head_of: RoleId,
    pub sub_organization_of: RoleId,
    pub teacher_of: RoleId,
    pub takes_course: RoleId,
    pub teaching_assistant_of: RoleId,
    pub advisor: RoleId,
    pub publication_author: RoleId,
    pub author_of: RoleId,
    pub degree_from: RoleId,
    pub doctoral_degree_from: RoleId,
    pub masters_degree_from: RoleId,
    pub undergraduate_degree_from: RoleId,
    pub research_interest: RoleId,
    pub collaborates_with: RoleId,
    pub works_with: RoleId,
    pub supervised_by: RoleId,
    pub offers_course: RoleId,
    pub enrolled_in: RoleId,
    pub affiliated_with: RoleId,
    pub orgnization_publication: RoleId,
}

/// Counts of the ontology's dimensions (compare §6.1: 34 roles, 128
/// concepts, 212 constraints).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OntologyDimensions {
    pub concepts: usize,
    pub roles: usize,
    pub constraints: usize,
}

impl UnivOntology {
    /// Build the full ontology.
    pub fn build() -> Self {
        let mut b = TBoxBuilder::new();

        // ---- concept hierarchy: persons --------------------------------
        b.sub("Employee", "Person");
        b.sub("Faculty", "Employee");
        b.sub("Professor", "Faculty");
        b.sub("FullProfessor", "Professor");
        b.sub("AssociateProfessor", "Professor");
        b.sub("AssistantProfessor", "Professor");
        b.sub("VisitingProfessor", "Professor");
        b.sub("Chair", "Professor");
        b.sub("Dean", "Professor");
        b.sub("Lecturer", "Faculty");
        b.sub("PostDoc", "Faculty");
        b.sub("Student", "Person");
        b.sub("UndergraduateStudent", "Student");
        b.sub("GraduateStudent", "Student");
        b.sub("ResearchAssistant", "GraduateStudent");
        b.sub("TeachingAssistant", "GraduateStudent");
        b.sub("Administrator", "Employee");
        b.sub("SupportStaff", "Employee");
        b.sub("Director", "Employee");
        b.sub("Alumnus", "Person");

        // ---- organizations ---------------------------------------------
        b.sub("University", "Organization");
        b.sub("Department", "Organization");
        b.sub("Institute", "Organization");
        b.sub("ResearchGroup", "Organization");
        b.sub("College", "Organization");
        b.sub("Program", "Organization");

        // ---- works & publications --------------------------------------
        b.sub("Course", "Work");
        b.sub("GraduateCourse", "Course");
        b.sub("Research", "Work");
        b.sub("Publication", "Work");
        b.sub("Article", "Publication");
        b.sub("JournalArticle", "Article");
        b.sub("ConferencePaper", "Article");
        b.sub("WorkshopPaper", "Article");
        b.sub("Book", "Publication");
        b.sub("TechnicalReport", "Publication");
        b.sub("Thesis", "Publication");
        b.sub("MastersThesis", "Thesis");
        b.sub("DoctoralThesis", "Thesis");
        b.sub("Manual", "Publication");
        b.sub("Software", "Publication");
        b.sub("Specification", "Publication");
        b.sub("UnofficialPublication", "Publication");
        b.sub("Journal", "Publication");
        b.sub("Event", "Work");
        b.sub("Conference", "Event");
        b.sub("Workshop", "Event");
        b.sub("Seminar", "Course");

        // ---- field specializations (widen to ~128 concepts) ------------
        for field in FIELDS {
            b.sub(&format!("{field}Course"), "Course");
            b.sub(&format!("{field}Seminar"), &format!("{field}Course"));
            b.sub(&format!("{field}Seminar"), "Seminar");
            b.sub(&format!("{field}ResearchGroup"), "ResearchGroup");
            b.sub(&format!("{field}Workshop"), "Workshop");
            b.sub(&format!("{field}Conference"), "Conference");
            b.sub(&format!("{field}Project"), "Research");
        }

        // ---- role hierarchy ---------------------------------------------
        b.sub_role("headOf", "worksFor");
        b.sub_role("worksFor", "memberOf");
        b.sub_role("affiliatedWith", "memberOf");
        b.sub_role("doctoralDegreeFrom", "degreeFrom");
        b.sub_role("mastersDegreeFrom", "degreeFrom");
        b.sub_role("undergraduateDegreeFrom", "degreeFrom");
        // hasAlumnus is the university-side orientation of degreeFrom.
        b.sub_role("hasAlumnus", "degreeFrom-");
        b.sub_role("teachingAssistantOf", "contributesTo");
        b.sub_role("teacherOf", "contributesTo");
        // authorOf is the person-side orientation of publicationAuthor.
        b.sub_role("authorOf", "publicationAuthor-");
        b.sub_role("publicationAuthor-", "authorOf");
        // worksWith is symmetric; collaboration and supervision imply it.
        b.sub_role("worksWith", "worksWith-");
        b.sub_role("collaboratesWith", "worksWith");
        b.sub_role("supervisedBy", "worksWith");
        b.sub_role("advisor", "worksWith");

        // ---- domains and ranges ------------------------------------------
        // Deliberately sparser than one-per-role: domain/range axioms both
        // widen reformulation cones (backward steps) and strengthen
        // absorption during minimization; this density calibrates the
        // workload's UCQ sizes into the paper's 35–667 band.
        let domains: [(&str, &str); 13] = [
            ("worksFor", "Employee"),
            ("memberOf", "Person"),
            ("headOf", "Chair"),
            ("teacherOf", "Faculty"),
            ("takesCourse", "Student"),
            ("teachingAssistantOf", "TeachingAssistant"),
            ("advisor", "Student"),
            ("publicationAuthor", "Publication"),
            ("enrolledIn", "Student"),
            ("attendsEvent", "Person"),
            ("reviewerOf", "Faculty"),
            ("fundedBy", "Research"),
            ("locatedIn", "Organization"),
        ];
        for (role, dom) in domains {
            b.sub(&format!("exists {role}"), dom);
        }
        let ranges: [(&str, &str); 10] = [
            ("headOf", "Department"),
            ("subOrganizationOf", "Organization"),
            ("teacherOf", "Course"),
            ("takesCourse", "Course"),
            ("advisor", "Professor"),
            ("publicationAuthor", "Person"),
            ("degreeFrom", "University"),
            ("offersCourse", "Course"),
            ("enrolledIn", "Program"),
            ("publishesIn", "Journal"),
        ];
        for (role, range) in ranges {
            b.sub(&format!("exists {role}-"), range);
        }

        // ---- existential axioms (the ∃ of LUBM∃) -------------------------
        let existentials: [(&str, &str); 16] = [
            ("Professor", "exists teacherOf"),
            ("Faculty", "exists worksFor"),
            ("Employee", "exists worksFor"),
            ("GraduateStudent", "exists advisor"),
            ("Student", "exists takesCourse"),
            ("Faculty", "exists degreeFrom"),
            ("GraduateStudent", "exists undergraduateDegreeFrom"),
            ("Department", "exists subOrganizationOf"),
            ("ResearchGroup", "exists subOrganizationOf"),
            ("Publication", "exists publicationAuthor"),
            ("Chair", "exists headOf"),
            ("University", "exists offersCourse"),
            ("Department", "exists offersCourse"),
            ("TeachingAssistant", "exists teachingAssistantOf"),
            ("Alumnus", "exists degreeFrom"),
            ("PostDoc", "exists doctoralDegreeFrom"),
        ];
        for (lhs, rhs) in existentials {
            b.sub(lhs, rhs);
        }
        // Constraint-light auxiliary roles (fact diversity; also bring the
        // role count to the paper's ~34).
        for extra in [
            "editorOf",
            "organizerOf",
            "projectLeader",
            "orgPublication",
            "researchInterest",
            "collaboratesWith",
        ] {
            let _ = b.role_expr(extra);
        }

        // ---- disjointness (negative constraints) -------------------------
        b.disjoint("Person", "Organization");
        b.disjoint("Person", "Work");
        b.disjoint("Organization", "Work");
        b.disjoint("UndergraduateStudent", "GraduateStudent");
        b.disjoint("FullProfessor", "AssociateProfessor");
        b.disjoint("FullProfessor", "AssistantProfessor");
        b.disjoint("AssociateProfessor", "AssistantProfessor");
        b.disjoint("Course", "Publication");
        b.disjoint("University", "Department");
        b.disjoint("UndergraduateStudent", "exists teacherOf");

        let (mut voc, tbox) = b.finish();
        let c = |voc: &Vocabulary, n: &str| voc.find_concept(n).expect(n);
        let r = |voc: &Vocabulary, n: &str| voc.find_role(n).expect(n);
        // A few extra vocabulary entries used by the generator only.
        let _ = voc.concept("Work");

        UnivOntology {
            person: c(&voc, "Person"),
            employee: c(&voc, "Employee"),
            faculty: c(&voc, "Faculty"),
            professor: c(&voc, "Professor"),
            full_professor: c(&voc, "FullProfessor"),
            associate_professor: c(&voc, "AssociateProfessor"),
            assistant_professor: c(&voc, "AssistantProfessor"),
            visiting_professor: c(&voc, "VisitingProfessor"),
            chair: c(&voc, "Chair"),
            dean: c(&voc, "Dean"),
            lecturer: c(&voc, "Lecturer"),
            postdoc: c(&voc, "PostDoc"),
            student: c(&voc, "Student"),
            undergraduate_student: c(&voc, "UndergraduateStudent"),
            graduate_student: c(&voc, "GraduateStudent"),
            research_assistant: c(&voc, "ResearchAssistant"),
            teaching_assistant: c(&voc, "TeachingAssistant"),
            organization: c(&voc, "Organization"),
            university: c(&voc, "University"),
            department: c(&voc, "Department"),
            institute: c(&voc, "Institute"),
            research_group: c(&voc, "ResearchGroup"),
            program: c(&voc, "Program"),
            course: c(&voc, "Course"),
            graduate_course: c(&voc, "GraduateCourse"),
            publication: c(&voc, "Publication"),
            article: c(&voc, "Article"),
            journal_article: c(&voc, "JournalArticle"),
            conference_paper: c(&voc, "ConferencePaper"),
            book: c(&voc, "Book"),
            technical_report: c(&voc, "TechnicalReport"),
            thesis: c(&voc, "Thesis"),
            masters_thesis: c(&voc, "MastersThesis"),
            doctoral_thesis: c(&voc, "DoctoralThesis"),
            software: c(&voc, "Software"),
            works_for: r(&voc, "worksFor"),
            member_of: r(&voc, "memberOf"),
            head_of: r(&voc, "headOf"),
            sub_organization_of: r(&voc, "subOrganizationOf"),
            teacher_of: r(&voc, "teacherOf"),
            takes_course: r(&voc, "takesCourse"),
            teaching_assistant_of: r(&voc, "teachingAssistantOf"),
            advisor: r(&voc, "advisor"),
            publication_author: r(&voc, "publicationAuthor"),
            author_of: r(&voc, "authorOf"),
            degree_from: r(&voc, "degreeFrom"),
            doctoral_degree_from: r(&voc, "doctoralDegreeFrom"),
            masters_degree_from: r(&voc, "mastersDegreeFrom"),
            undergraduate_degree_from: r(&voc, "undergraduateDegreeFrom"),
            research_interest: r(&voc, "researchInterest"),
            collaborates_with: r(&voc, "collaboratesWith"),
            works_with: r(&voc, "worksWith"),
            supervised_by: r(&voc, "supervisedBy"),
            offers_course: r(&voc, "offersCourse"),
            enrolled_in: r(&voc, "enrolledIn"),
            affiliated_with: r(&voc, "affiliatedWith"),
            orgnization_publication: r(&voc, "orgPublication"),
            voc,
            tbox,
        }
    }

    /// Concept / role / constraint counts.
    pub fn dimensions(&self) -> OntologyDimensions {
        OntologyDimensions {
            concepts: self.voc.num_concepts(),
            roles: self.voc.num_roles(),
            constraints: self.tbox.len(),
        }
    }

    /// Field-specific concept id, e.g. `field_concept("AI", "Course")`.
    pub fn field_concept(&self, field: &str, family: &str) -> ConceptId {
        self.voc
            .find_concept(&format!("{field}{family}"))
            .expect("field concept exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{BasicConcept, Dependencies, PredId, Role, TBoxClosure};

    #[test]
    fn dimensions_match_paper_scale() {
        let onto = UnivOntology::build();
        let d = onto.dimensions();
        // §6.1: 34 roles, 128 concepts, 212 constraints. Allow a small
        // tolerance band; the exact TBox is in the unavailable tech report.
        assert!(
            (100..=140).contains(&d.concepts),
            "concepts = {}",
            d.concepts
        );
        assert!((20..=40).contains(&d.roles), "roles = {}", d.roles);
        assert!(
            (180..=240).contains(&d.constraints),
            "constraints = {}",
            d.constraints
        );
    }

    #[test]
    fn taxonomy_entailments() {
        let onto = UnivOntology::build();
        let closure = TBoxClosure::compute(&onto.tbox);
        let full = BasicConcept::Atomic(onto.full_professor);
        let person = BasicConcept::Atomic(onto.person);
        assert!(closure.entails_concept_inclusion(full, person));
        // Role hierarchy: headOf ⊑ memberOf through worksFor.
        let head = Role::direct(onto.head_of);
        let member = Role::direct(onto.member_of);
        assert!(closure.entails_role_inclusion(head, member));
        // Existential composition: Chair ⊑ ∃worksFor (headOf ⊑ worksFor).
        let chair = BasicConcept::Atomic(onto.chair);
        assert!(closure
            .entails_concept_inclusion(chair, BasicConcept::Exists(Role::direct(onto.works_for))));
    }

    #[test]
    fn author_of_is_inverse_of_publication_author() {
        let onto = UnivOntology::build();
        let closure = TBoxClosure::compute(&onto.tbox);
        let author_of = Role::direct(onto.author_of);
        let pub_author_inv = Role::inv(onto.publication_author);
        assert!(closure.entails_role_inclusion(author_of, pub_author_inv));
        assert!(closure.entails_role_inclusion(pub_author_inv, author_of));
    }

    #[test]
    fn person_has_a_wide_dependency_cone() {
        // memberOf must depend on many predicates — this is what makes the
        // workload's reformulations large.
        let onto = UnivOntology::build();
        let deps = Dependencies::compute(&onto.voc, &onto.tbox);
        let member = PredId::Role(onto.member_of);
        assert!(
            deps.dep(member).len() > 20,
            "memberOf dependency cone: {}",
            deps.dep(member).len()
        );
    }

    #[test]
    fn field_concepts_resolve() {
        let onto = UnivOntology::build();
        for f in FIELDS {
            let c = onto.field_concept(f, "Course");
            let closure = TBoxClosure::compute(&onto.tbox);
            assert!(closure.entails_concept_inclusion(
                BasicConcept::Atomic(c),
                BasicConcept::Atomic(onto.course)
            ));
        }
    }

    #[test]
    fn ontology_has_negative_constraints() {
        let onto = UnivOntology::build();
        assert!(onto.tbox.num_negative() >= 8);
    }
}
