//! Engine operator microbenchmarks: scans, index-nested-loop CQ joins,
//! union dedup, JUCQ materialize+hash-join — the executor primitives whose
//! relative costs drive the figures.
//!
//! Each operator shape runs twice: on the default vectorized (batched
//! columnar) pipeline and on the row-at-a-time pipeline (`…-row`), so
//! the before/after of the hot-path refactor is measured, not asserted.
//! Mean timings are merged into the tracked bench JSON under the
//! `"criterion_executor"` section (path override: `OBDA_BENCH_JSON`).

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use obda_bench::{benchjson, Dataset};
use obda_query::{Atom, FolQuery, Term, VarId, CQ, JUCQ, UCQ};
use obda_rdbms::{Engine, EngineProfile, EvalOptions, ExecMode, LayoutKind};

fn v(i: u32) -> Term {
    Term::Var(VarId(i))
}

fn bench_executor(c: &mut Criterion) {
    let dataset = Dataset::build_with_facts(20_000);
    let onto = &dataset.onto;
    let engine = Engine::load(
        &dataset.abox,
        &onto.voc,
        LayoutKind::Simple,
        EngineProfile::pg_like(),
    );

    let scan = FolQuery::Cq(CQ::with_var_head(
        vec![VarId(0), VarId(1)],
        vec![Atom::Role(onto.takes_course, v(0), v(1))],
    ));
    let join2 = FolQuery::Cq(CQ::with_var_head(
        vec![VarId(0)],
        vec![
            Atom::Concept(onto.graduate_student, v(0)),
            Atom::Role(onto.takes_course, v(0), v(1)),
        ],
    ));
    let union4 = FolQuery::Ucq(UCQ::from_cqs(
        vec![v(0)],
        [
            onto.full_professor,
            onto.associate_professor,
            onto.assistant_professor,
            onto.lecturer,
        ]
        .map(|cls| CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(cls, v(0))])),
    ));
    let jucq = FolQuery::Jucq(JUCQ::new(
        vec![v(0)],
        vec![
            UCQ::single(CQ::with_var_head(
                vec![VarId(0)],
                vec![Atom::Concept(onto.graduate_student, v(0))],
            )),
            UCQ::single(CQ::with_var_head(
                vec![VarId(0), VarId(1)],
                vec![Atom::Role(onto.takes_course, v(0), v(1))],
            )),
        ],
    ));

    let mut group = c.benchmark_group("executor");
    for (name, q) in [
        ("role-scan", &scan),
        ("inl-join", &join2),
        ("union4-dedup", &union4),
        ("jucq-2way", &jucq),
    ] {
        // Default pipeline (vectorized batched execution).
        group.bench_function(name, |b| {
            b.iter(|| black_box(engine.evaluate(q).unwrap().rows.len()))
        });
        // Row-at-a-time baseline — the pre-vectorization hot path.
        let row_opts = EvalOptions {
            mode: Some(ExecMode::Row),
            ..EvalOptions::default()
        };
        group.bench_function(format!("{name}-row"), |b| {
            b.iter(|| black_box(engine.evaluate_opts(q, &row_opts).unwrap().rows.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_executor);

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);

    // Merge mean timings into the tracked trajectory file so criterion
    // runs land in the repo, not just in CI logs.
    let reports = criterion.reports();
    if reports.is_empty() {
        return; // filtered run: keep the tracked file untouched
    }
    let mut section = benchjson::JsonObj::new();
    for r in &reports {
        let key: String =
            r.id.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
        section = section.num(&format!("{key}_mean_us"), r.mean.as_secs_f64() * 1e6);
    }
    let path = benchjson::default_path();
    if let Err(e) = benchjson::merge_section(&path, "criterion_executor", &section) {
        eprintln!("cannot write {}: {e}", path.display());
    } else {
        println!("\nwrote {} [criterion_executor]", path.display());
    }
}
