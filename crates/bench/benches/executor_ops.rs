//! Engine operator microbenchmarks: scans, index-nested-loop CQ joins,
//! union dedup, JUCQ materialize+hash-join — the executor primitives whose
//! relative costs drive the figures.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use obda_bench::Dataset;
use obda_query::{Atom, FolQuery, Term, VarId, CQ, JUCQ, UCQ};
use obda_rdbms::{Engine, EngineProfile, LayoutKind};

fn v(i: u32) -> Term {
    Term::Var(VarId(i))
}

fn bench_executor(c: &mut Criterion) {
    let dataset = Dataset::build_with_facts(20_000);
    let onto = &dataset.onto;
    let engine = Engine::load(
        &dataset.abox,
        &onto.voc,
        LayoutKind::Simple,
        EngineProfile::pg_like(),
    );

    let scan = FolQuery::Cq(CQ::with_var_head(
        vec![VarId(0), VarId(1)],
        vec![Atom::Role(onto.takes_course, v(0), v(1))],
    ));
    let join2 = FolQuery::Cq(CQ::with_var_head(
        vec![VarId(0)],
        vec![
            Atom::Concept(onto.graduate_student, v(0)),
            Atom::Role(onto.takes_course, v(0), v(1)),
        ],
    ));
    let union4 = FolQuery::Ucq(UCQ::from_cqs(
        vec![v(0)],
        [
            onto.full_professor,
            onto.associate_professor,
            onto.assistant_professor,
            onto.lecturer,
        ]
        .map(|cls| CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(cls, v(0))])),
    ));
    let jucq = FolQuery::Jucq(JUCQ::new(
        vec![v(0)],
        vec![
            UCQ::single(CQ::with_var_head(
                vec![VarId(0)],
                vec![Atom::Concept(onto.graduate_student, v(0))],
            )),
            UCQ::single(CQ::with_var_head(
                vec![VarId(0), VarId(1)],
                vec![Atom::Role(onto.takes_course, v(0), v(1))],
            )),
        ],
    ));

    let mut group = c.benchmark_group("executor");
    for (name, q) in [
        ("role-scan", &scan),
        ("inl-join", &join2),
        ("union4-dedup", &union4),
        ("jucq-2way", &jucq),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(engine.evaluate(q).unwrap().rows.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
