//! Ablation: generalized covers on/off.
//!
//! §6.3 notes GDL picked a generalized cover "always (with our cost
//! model)" — this ablation runs GDL with and without the enlarge move and
//! compares the evaluation time of the covers each finds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use obda_bench::Dataset;
use obda_core::{gdl, GdlConfig, QueryAnalysis};
use obda_query::FolQuery;
use obda_rdbms::{EngineProfile, LayoutKind};

fn bench_gcov_ablation(c: &mut Criterion) {
    let dataset = Dataset::build_with_facts(20_000);
    let engine = dataset.engine(LayoutKind::Simple, EngineProfile::pg_like());
    let ext = engine.ext_cost_model();
    let wl = dataset.workload();

    let mut group = c.benchmark_group("ablation-gcov");
    group.sample_size(10);
    for name in ["Q1", "Q8"] {
        let q = wl.iter().find(|q| q.name == name).unwrap();
        let analysis = QueryAnalysis::new(&q.cq, &dataset.deps);
        let with = gdl(
            &q.cq,
            &dataset.onto.tbox,
            &analysis,
            &ext,
            &GdlConfig::default(),
        );
        let without = gdl(
            &q.cq,
            &dataset.onto.tbox,
            &analysis,
            &ext,
            &GdlConfig {
                explore_generalized: false,
                ..Default::default()
            },
        );
        let with_q = FolQuery::Jucq(with.jucq);
        let without_q = FolQuery::Jucq(without.jucq);
        group.bench_function(format!("{name}/with-gcov"), |b| {
            b.iter(|| black_box(engine.evaluate(&with_q).unwrap().rows.len()))
        });
        group.bench_function(format!("{name}/lq-only"), |b| {
            b.iter(|| black_box(engine.evaluate(&without_q).unwrap().rows.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gcov_ablation);
criterion_main!(benches);
