//! Criterion version of Figure 2's core comparison: evaluation time of the
//! UCQ vs Croot vs GDL reformulations on the pg-like engine (simple
//! layout), for a fast and a heavy workload query.
//!
//! Reformulations are prepared once outside the measurement loop — the
//! figure measures *evaluation* time, like the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use obda_bench::{choose, Dataset, EstimatorKind};
use obda_core::Strategy;
use obda_rdbms::{EngineProfile, LayoutKind};

fn bench_fig2(c: &mut Criterion) {
    let dataset = Dataset::build_with_facts(20_000);
    let engine = dataset.engine(LayoutKind::Simple, EngineProfile::pg_like());
    let wl = dataset.workload();

    let mut group = c.benchmark_group("fig2-eval");
    group.sample_size(10);
    for name in ["Q4", "Q11"] {
        let q = wl.iter().find(|q| q.name == name).unwrap();
        for (label, strategy, est) in [
            ("ucq", Strategy::Ucq, EstimatorKind::Ext),
            ("croot", Strategy::CrootJucq, EstimatorKind::Ext),
            (
                "gdl-ext",
                Strategy::Gdl { time_budget: None },
                EstimatorKind::Ext,
            ),
            (
                "gdl-rdbms",
                Strategy::Gdl { time_budget: None },
                EstimatorKind::Rdbms,
            ),
        ] {
            let chosen = choose(&dataset, &engine, &q.cq, &strategy, est);
            group.bench_function(format!("{name}/{label}"), |b| {
                b.iter(|| black_box(engine.evaluate(&chosen.fol).unwrap().rows.len()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
