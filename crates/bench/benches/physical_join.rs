//! Physical-operator ablation: forced index-nested-loop vs forced hash
//! join vs the cost-chosen default, on LUBM-style workloads.
//!
//! The acceptance bar for the cost-chosen default: it must at least match
//! forced-INL on every query and beat it on scan-heavy reformulated
//! unions (wide intermediate results re-probing large tables). Compare
//! the `chosen/*` numbers against their `inl/*` counterparts.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use obda_bench::Dataset;
use obda_lubm::star_query;
use obda_query::{Atom, FolQuery, Term, VarId, CQ};
use obda_rdbms::{EngineProfile, JoinStrategy, LayoutKind};
use obda_reform::perfect_ref;

fn v(i: u32) -> Term {
    Term::Var(VarId(i))
}

fn bench_physical_join(c: &mut Criterion) {
    let dataset = Dataset::build_with_facts(20_000);
    let onto = &dataset.onto;
    let engine = dataset.engine(LayoutKind::Simple, EngineProfile::pg_like());

    // A scan-heavy workload: reformulated unions whose arms join through
    // high-fanout roles (the shape where hash joins pay off), plus a
    // selective star query (the shape where INL must stay in charge).
    let workload = dataset.workload();
    let mut queries: Vec<(String, FolQuery)> = workload
        .iter()
        .filter(|w| ["Q2", "Q5", "Q12"].contains(&w.name.as_str()))
        .map(|w| {
            (
                format!("{}-ucq", w.name),
                FolQuery::Ucq(perfect_ref(&w.cq, &onto.tbox)),
            )
        })
        .collect();
    queries.push((
        "A3-star".to_owned(),
        FolQuery::Ucq(perfect_ref(&star_query(onto, 3), &onto.tbox)),
    ));
    // The scan-heavy shape hash joins exist for: the whole enrollment
    // relation expands into thousands of intermediate rows, which then
    // filter through a concept — probing per row (INL) re-touches the
    // index thousands of times; hashing the concept once is far cheaper.
    queries.push((
        "enrollment-filter".to_owned(),
        FolQuery::Cq(CQ::with_var_head(
            vec![VarId(0), VarId(1)],
            vec![
                Atom::Concept(onto.student, v(0)),
                Atom::Role(onto.takes_course, v(0), v(1)),
                Atom::Concept(onto.course, v(1)),
            ],
        )),
    ));
    queries.push((
        "coursemates".to_owned(),
        FolQuery::Cq(CQ::with_var_head(
            vec![VarId(0), VarId(2)],
            vec![
                Atom::Role(onto.takes_course, v(0), v(1)),
                Atom::Role(onto.takes_course, v(2), v(1)),
                Atom::Concept(onto.graduate_student, v(2)),
            ],
        )),
    ));

    let mut group = c.benchmark_group("physical-join");
    for (name, q) in &queries {
        for strategy in [
            ("inl", JoinStrategy::ForcedInl),
            ("hash", JoinStrategy::ForcedHash),
            ("chosen", JoinStrategy::CostChosen),
        ] {
            group.bench_function(format!("{}/{name}", strategy.0), |b| {
                b.iter(|| {
                    black_box(
                        engine
                            .evaluate_with(q, strategy.1)
                            .expect("pg-like: no statement limit")
                            .rows
                            .len(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_physical_join);
criterion_main!(benches);
