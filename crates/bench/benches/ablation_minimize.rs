//! Ablation: does minimizing the UCQ before shipping it matter?
//!
//! §2.3: "minimal UCQ reformulations can be obviously processed more
//! efficiently [but] they still repeat some computations". This ablation
//! measures evaluation of the raw (output-subsumed) UCQ vs its minimal
//! form.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use obda_bench::Dataset;
use obda_query::{minimize_ucq, FolQuery};
use obda_rdbms::{EngineProfile, LayoutKind};
use obda_reform::perfect_ref_pruned;

fn bench_minimize_ablation(c: &mut Criterion) {
    let dataset = Dataset::build_with_facts(20_000);
    let engine = dataset.engine(LayoutKind::Simple, EngineProfile::pg_like());
    let wl = dataset.workload();

    let mut group = c.benchmark_group("ablation-minimize");
    group.sample_size(10);
    for name in ["Q5", "Q11"] {
        let q = wl.iter().find(|q| q.name == name).unwrap();
        let raw = perfect_ref_pruned(&q.cq, &dataset.onto.tbox);
        let minimal = minimize_ucq(&raw);
        let raw_q = FolQuery::Ucq(raw);
        let min_q = FolQuery::Ucq(minimal);
        group.bench_function(format!("{name}/raw"), |b| {
            b.iter(|| black_box(engine.evaluate(&raw_q).unwrap().rows.len()))
        });
        group.bench_function(format!("{name}/minimized"), |b| {
            b.iter(|| black_box(engine.evaluate(&min_q).unwrap().rows.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_minimize_ablation);
criterion_main!(benches);
