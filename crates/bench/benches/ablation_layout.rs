//! Ablation: storage layouts under an identical query.
//!
//! Simple per-predicate tables vs the clustered triple table vs the
//! DB2RDF-like DPH entity layout — the §6.3 finding that entity layouts
//! are a poor fit for reformulated workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use obda_bench::Dataset;
use obda_query::{Atom, FolQuery, Term, VarId, CQ};
use obda_rdbms::{Engine, EngineProfile, LayoutKind};

fn bench_layouts(c: &mut Criterion) {
    let dataset = Dataset::build_with_facts(20_000);
    let onto = &dataset.onto;
    let q = FolQuery::Cq(CQ::with_var_head(
        vec![VarId(0)],
        vec![
            Atom::Concept(onto.graduate_student, Term::Var(VarId(0))),
            Atom::Role(onto.advisor, Term::Var(VarId(0)), Term::Var(VarId(1))),
            Atom::Role(onto.teacher_of, Term::Var(VarId(1)), Term::Var(VarId(2))),
        ],
    ));

    let mut group = c.benchmark_group("ablation-layout");
    group.sample_size(10);
    for layout in [LayoutKind::Simple, LayoutKind::Triple, LayoutKind::Dph] {
        let engine = Engine::load(&dataset.abox, &onto.voc, layout, EngineProfile::pg_like());
        group.bench_function(layout.name(), |b| {
            b.iter(|| black_box(engine.evaluate(&q).unwrap().rows.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_layouts);
criterion_main!(benches);
