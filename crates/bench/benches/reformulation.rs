//! Microbenchmarks of the reformulation pipeline: PerfectRef (exhaustive
//! and output-subsumed), UCQ minimization, and USCQ factorization.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use obda_bench::Dataset;
use obda_query::minimize_ucq;
use obda_reform::{factorize_ucq, perfect_ref, perfect_ref_pruned};

fn bench_reformulation(c: &mut Criterion) {
    let dataset = Dataset::build_with_facts(2_000);
    let wl = dataset.workload();
    let tbox = &dataset.onto.tbox;

    let mut group = c.benchmark_group("perfectref");
    group.sample_size(10);
    for name in ["Q3", "Q5", "Q12"] {
        let q = wl.iter().find(|q| q.name == name).unwrap();
        group.bench_function(format!("pruned/{name}"), |b| {
            b.iter(|| black_box(perfect_ref_pruned(&q.cq, tbox)))
        });
    }
    // Exhaustive only on the small query (the raw fixpoint is the slow
    // baseline by design).
    let q3 = wl.iter().find(|q| q.name == "Q3").unwrap();
    group.bench_function("exhaustive/Q3", |b| {
        b.iter(|| black_box(perfect_ref(&q3.cq, tbox)))
    });
    group.finish();

    let mut group = c.benchmark_group("post-processing");
    group.sample_size(10);
    let q5 = wl.iter().find(|q| q.name == "Q5").unwrap();
    let ucq = perfect_ref_pruned(&q5.cq, tbox);
    group.bench_function("minimize/Q5", |b| b.iter(|| black_box(minimize_ucq(&ucq))));
    let minimal = minimize_ucq(&ucq);
    group.bench_function("factorize/Q5", |b| {
        b.iter(|| black_box(factorize_ucq(&minimal)))
    });
    group.finish();
}

criterion_group!(benches, bench_reformulation);
criterion_main!(benches);
