//! Benchmarks of the cover-search algorithms: GDL (greedy, Algorithm 1)
//! vs EDL (exhaustive) on the A3–A5 star queries, plus the time-limited
//! GDL variant of §6.4.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use obda_bench::Dataset;
use obda_core::{edl, gdl, GdlConfig, QueryAnalysis, StructuralEstimator};
use obda_lubm::star_query;

fn bench_cover_search(c: &mut Criterion) {
    let dataset = Dataset::build_with_facts(2_000);
    let tbox = &dataset.onto.tbox;

    let mut group = c.benchmark_group("cover-search");
    group.sample_size(10);
    for arity in 3..=5usize {
        let q = star_query(&dataset.onto, arity);
        let analysis = QueryAnalysis::new(&q, &dataset.deps);
        group.bench_function(format!("gdl/A{arity}"), |b| {
            b.iter(|| {
                black_box(gdl(
                    &q,
                    tbox,
                    &analysis,
                    &StructuralEstimator,
                    &GdlConfig::default(),
                ))
            })
        });
        // EDL only for the small spaces (A5 has thousands of covers).
        if arity <= 4 {
            group.bench_function(format!("edl/A{arity}"), |b| {
                b.iter(|| black_box(edl(&q, tbox, &analysis, &StructuralEstimator, 20_000, true)))
            });
        }
    }
    // Time-limited GDL (§6.4).
    let q = star_query(&dataset.onto, 5);
    let analysis = QueryAnalysis::new(&q, &dataset.deps);
    let limited = GdlConfig {
        time_budget: Some(Duration::from_millis(20)),
        ..Default::default()
    };
    group.bench_function("gdl-20ms/A5", |b| {
        b.iter(|| black_box(gdl(&q, tbox, &analysis, &StructuralEstimator, &limited)))
    });
    group.finish();
}

criterion_group!(benches, bench_cover_search);
criterion_main!(benches);
