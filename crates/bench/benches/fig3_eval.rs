//! Criterion version of Figure 3's core comparison: the same reformulation
//! evaluated on the DB2-like engine over the simple layout vs the
//! DB2RDF-like DPH layout (the paper's finding: the entity layout is
//! unsuited to reformulated workloads).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use obda_bench::{choose, Dataset, EstimatorKind};
use obda_core::Strategy;
use obda_rdbms::{EngineProfile, LayoutKind};

fn bench_fig3(c: &mut Criterion) {
    let dataset = Dataset::build_with_facts(20_000);
    let simple = dataset.engine(LayoutKind::Simple, EngineProfile::db2_like());
    let rdf = dataset.engine(LayoutKind::Dph, EngineProfile::db2_like());
    let wl = dataset.workload();
    let q = wl.iter().find(|q| q.name == "Q12").unwrap();

    let chosen = choose(&dataset, &simple, &q.cq, &Strategy::Ucq, EstimatorKind::Ext);
    let mut group = c.benchmark_group("fig3-eval");
    group.sample_size(10);
    group.bench_function("Q12/ucq/simple", |b| {
        b.iter(|| black_box(simple.evaluate(&chosen.fol).unwrap().rows.len()))
    });
    group.bench_function("Q12/ucq/rdf-dph", |b| {
        b.iter(|| black_box(rdf.evaluate(&chosen.fol).unwrap().rows.len()))
    });
    let gdl = choose(
        &dataset,
        &simple,
        &q.cq,
        &Strategy::Gdl { time_budget: None },
        EstimatorKind::Rdbms,
    );
    group.bench_function("Q12/gdl/simple", |b| {
        b.iter(|| black_box(simple.evaluate(&gdl.fol).unwrap().rows.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
