//! Native executor vs the SQL-delegation backend, plus the SQL
//! front-end's own cost split (generate / parse / execute).
//!
//! The SQL backend is a correctness oracle, not a performance contender:
//! it runs exactly the generated statement with hash equi-joins and no
//! cost model. These benches quantify the gap — and how much of the
//! delegation cost is *statement text handling* (the §6.3 size problem)
//! versus relational execution.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use obda_bench::Dataset;
use obda_query::FolQuery;
use obda_rdbms::sqlexec::parse;
use obda_rdbms::{Backend, EngineProfile, LayoutKind};
use obda_reform::perfect_ref;

fn bench_sql_backend(c: &mut Criterion) {
    let dataset = Dataset::build_with_facts(3_000);
    let onto = &dataset.onto;
    let native = dataset.engine(LayoutKind::Simple, EngineProfile::pg_like());
    let sql = dataset
        .engine(LayoutKind::Simple, EngineProfile::pg_like())
        .with_backend(Backend::Sql);

    // A compact and a union-heavy reformulation.
    let queries: Vec<(String, FolQuery)> = dataset
        .workload()
        .iter()
        .filter(|w| ["Q3", "Q11"].contains(&w.name.as_str()))
        .map(|w| {
            (
                w.name.clone(),
                FolQuery::Ucq(perfect_ref(&w.cq, &onto.tbox)),
            )
        })
        .collect();

    for (name, q) in &queries {
        c.bench_function(&format!("native/{name}"), |b| {
            b.iter(|| black_box(native.evaluate(black_box(q)).unwrap().rows.len()))
        });
        c.bench_function(&format!("sql-backend/{name}"), |b| {
            b.iter(|| black_box(sql.evaluate(black_box(q)).unwrap().rows.len()))
        });
        let text = native.sql_for(q);
        c.bench_function(&format!("sql-generate/{name}"), |b| {
            b.iter(|| black_box(native.sql_for(black_box(q)).len()))
        });
        c.bench_function(&format!("sql-parse/{name}"), |b| {
            b.iter(|| black_box(parse(black_box(&text)).unwrap()))
        });
        c.bench_function(&format!("sql-execute-cached-text/{name}"), |b| {
            b.iter(|| black_box(sql.run_sql(black_box(&text)).unwrap().rows.len()))
        });
    }
}

criterion_group!(benches, bench_sql_backend);
criterion_main!(benches);
