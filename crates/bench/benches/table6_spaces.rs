//! Benchmarks of the Table-6 search-space machinery: safe-cover lattice
//! enumeration (`Lq`) and generalized-cover enumeration (`Gq`) on the
//! A3–A5 star queries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use obda_bench::Dataset;
use obda_core::{enumerate_generalized_covers, enumerate_safe_covers, QueryAnalysis};
use obda_lubm::star_query;

fn bench_spaces(c: &mut Criterion) {
    let dataset = Dataset::build_with_facts(2_000);
    let mut group = c.benchmark_group("search-spaces");
    group.sample_size(10);
    for arity in 3..=5usize {
        let q = star_query(&dataset.onto, arity);
        let analysis = QueryAnalysis::new(&q, &dataset.deps);
        group.bench_function(format!("Lq/A{arity}"), |b| {
            b.iter(|| black_box(enumerate_safe_covers(&analysis, 0).len()))
        });
        group.bench_function(format!("Gq/A{arity}"), |b| {
            b.iter(|| black_box(enumerate_generalized_covers(&analysis, 20_000).covers.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spaces);
criterion_main!(benches);
