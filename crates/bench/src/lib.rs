//! # obda-bench
//!
//! Shared harness for regenerating the paper's tables and figures: dataset
//! construction at configurable scales, strategy × engine × layout sweeps,
//! and fixed-width table rendering. Each table/figure has a binary in
//! `src/bin` (see DESIGN.md's per-experiment index).

use std::time::Duration;

use obda_core::{choose_reformulation, Chosen, CostEstimator, Strategy};
use obda_dllite::{ABox, Dependencies};
use obda_lubm::{generate, GenConfig, UnivOntology, WorkloadQuery};
use obda_query::CQ;
use obda_rdbms::{Engine, EngineError, EngineProfile, ExplainEstimator, LayoutKind};

/// Benchmark scales: fact counts standing in for the paper's 15M / 100M
/// server-scale ABoxes (substitution documented in DESIGN.md §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Small,
    Large,
}

impl Scale {
    /// Target fact count, overridable via `OBDA_SCALE_SMALL` /
    /// `OBDA_SCALE_LARGE`.
    pub fn target_facts(self) -> usize {
        let (var, default) = match self {
            Scale::Small => ("OBDA_SCALE_SMALL", 60_000),
            Scale::Large => ("OBDA_SCALE_LARGE", 300_000),
        };
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    pub fn label(self) -> &'static str {
        match self {
            Scale::Small => "small (15M-regime)",
            Scale::Large => "large (100M-regime)",
        }
    }
}

/// A generated dataset: ontology + ABox + dependency sets.
pub struct Dataset {
    pub onto: UnivOntology,
    pub abox: ABox,
    pub deps: Dependencies,
    pub facts: usize,
}

impl Dataset {
    pub fn build(scale: Scale) -> Self {
        Self::build_with_facts(scale.target_facts())
    }

    /// Build a dataset with an explicit fact-count target (used by
    /// criterion benches, which want small fixed fixtures).
    pub fn build_with_facts(target_facts: usize) -> Self {
        let mut onto = UnivOntology::build();
        let config = GenConfig {
            target_facts,
            ..Default::default()
        };
        let (abox, report) = generate(&mut onto, &config);
        let deps = Dependencies::compute(&onto.voc, &onto.tbox);
        Dataset {
            onto,
            abox,
            deps,
            facts: report.facts,
        }
    }

    pub fn engine(&self, layout: LayoutKind, profile: EngineProfile) -> Engine {
        Engine::load(&self.abox, &self.onto.voc, layout, profile)
    }

    pub fn workload(&self) -> Vec<WorkloadQuery> {
        obda_lubm::workload(&self.onto)
    }
}

/// Which cost estimator a strategy run consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// The engine's own explain (GDL/RDBMS in the figures).
    Rdbms,
    /// The external textbook model (GDL/ext).
    Ext,
}

/// One measured cell of a figure.
#[derive(Debug, Clone)]
pub struct Cell {
    pub query: String,
    pub strategy: String,
    /// Wall-clock execution time of the chosen reformulation.
    pub wall: Option<Duration>,
    /// Simulated (profile-scaled work-unit) time.
    pub simulated: Option<Duration>,
    /// SQL statement size shipped to the engine.
    pub sql_bytes: usize,
    /// Engine error, e.g. statement too long (Figure 3's missing bars).
    pub error: Option<String>,
    /// Number of result rows.
    pub rows: usize,
    /// Union terms in the chosen reformulation.
    pub union_terms: usize,
}

/// Choose a reformulation under `strategy` and evaluate it on `engine`.
pub fn run_cell(
    dataset: &Dataset,
    engine: &Engine,
    query: &WorkloadQuery,
    strategy: &Strategy,
    estimator: EstimatorKind,
    label: &str,
) -> Cell {
    let chosen = choose(dataset, engine, &query.cq, strategy, estimator);
    let union_terms = chosen.fol.equivalent_cq_count();
    match engine.evaluate(&chosen.fol) {
        Ok(outcome) => Cell {
            query: query.name.clone(),
            strategy: label.to_owned(),
            wall: Some(outcome.metrics.wall),
            simulated: Some(outcome.simulated),
            sql_bytes: outcome.sql_bytes,
            error: None,
            rows: outcome.rows.len(),
            union_terms,
        },
        Err(EngineError::StatementTooLong { size, limit }) => Cell {
            query: query.name.clone(),
            strategy: label.to_owned(),
            wall: None,
            simulated: None,
            sql_bytes: size,
            error: Some(format!("statement too long ({size} > {limit})")),
            rows: 0,
            union_terms,
        },
        Err(other) => Cell {
            query: query.name.clone(),
            strategy: label.to_owned(),
            wall: None,
            simulated: None,
            sql_bytes: 0,
            error: Some(other.to_string()),
            rows: 0,
            union_terms,
        },
    }
}

/// Run strategy selection with the right estimator wiring.
pub fn choose(
    dataset: &Dataset,
    engine: &Engine,
    cq: &CQ,
    strategy: &Strategy,
    estimator: EstimatorKind,
) -> Chosen {
    match estimator {
        EstimatorKind::Rdbms => {
            let est = ExplainEstimator::new(engine);
            choose_reformulation(cq, &dataset.onto.tbox, &dataset.deps, &est, strategy)
        }
        EstimatorKind::Ext => {
            let est = engine.ext_cost_model();
            choose_with(&est, dataset, cq, strategy)
        }
    }
}

fn choose_with(est: &dyn CostEstimator, dataset: &Dataset, cq: &CQ, strategy: &Strategy) -> Chosen {
    choose_reformulation(cq, &dataset.onto.tbox, &dataset.deps, est, strategy)
}

/// Render cells as a fixed-width table grouped by query.
pub fn render_table(title: &str, cells: &[Cell]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "{:<6} {:<22} {:>10} {:>10} {:>9} {:>8} {:>10}  {}",
        "query", "strategy", "wall_ms", "sim_ms", "rows", "unions", "sql_bytes", "note"
    );
    for c in cells {
        let wall = c
            .wall
            .map(|d| format!("{:.2}", d.as_secs_f64() * 1e3))
            .unwrap_or_else(|| "-".into());
        let sim = c
            .simulated
            .map(|d| format!("{:.2}", d.as_secs_f64() * 1e3))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "{:<6} {:<22} {:>10} {:>10} {:>9} {:>8} {:>10}  {}",
            c.query,
            c.strategy,
            wall,
            sim,
            c.rows,
            c.union_terms,
            c.sql_bytes,
            c.error.as_deref().unwrap_or("")
        );
    }
    out
}

/// Format a duration in milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        std::env::set_var("OBDA_SCALE_SMALL", "2000");
        Dataset::build(Scale::Small)
    }

    #[test]
    fn dataset_builds_and_loads() {
        let d = tiny_dataset();
        assert!(d.facts >= 2000);
        let engine = d.engine(LayoutKind::Simple, EngineProfile::pg_like());
        assert!(engine.stats().total_facts >= 2000);
        assert_eq!(d.workload().len(), 13);
    }

    #[test]
    fn run_cell_produces_measurements() {
        let d = tiny_dataset();
        let engine = d.engine(LayoutKind::Simple, EngineProfile::pg_like());
        let wl = d.workload();
        let q12 = wl.iter().find(|q| q.name == "Q12").unwrap();
        let cell = run_cell(
            &d,
            &engine,
            q12,
            &Strategy::CrootJucq,
            EstimatorKind::Ext,
            "Croot",
        );
        assert!(cell.error.is_none(), "{:?}", cell.error);
        assert!(cell.wall.is_some());
        assert!(cell.sql_bytes > 0);
    }

    #[test]
    fn render_table_formats() {
        let cell = Cell {
            query: "Q1".into(),
            strategy: "UCQ".into(),
            wall: Some(Duration::from_millis(5)),
            simulated: Some(Duration::from_millis(7)),
            sql_bytes: 123,
            error: None,
            rows: 10,
            union_terms: 42,
        };
        let table = render_table("test", &[cell]);
        assert!(table.contains("Q1"));
        assert!(table.contains("5.00"));
    }
}
