//! # obda-bench
//!
//! Shared harness for regenerating the paper's tables and figures: dataset
//! construction at configurable scales, strategy × engine × layout sweeps,
//! and fixed-width table rendering. Each table/figure has a binary in
//! `src/bin` (see DESIGN.md's per-experiment index).

use std::time::Duration;

use obda_core::{choose_reformulation, Chosen, CostEstimator, Strategy};
use obda_dllite::{ABox, Dependencies};
use obda_lubm::{generate, GenConfig, UnivOntology, WorkloadQuery};
use obda_query::CQ;
use obda_rdbms::{Engine, EngineError, EngineProfile, ExplainEstimator, LayoutKind};

/// Benchmark scales: fact counts standing in for the paper's 15M / 100M
/// server-scale ABoxes (substitution documented in DESIGN.md §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Small,
    Large,
}

impl Scale {
    /// Target fact count, overridable via `OBDA_SCALE_SMALL` /
    /// `OBDA_SCALE_LARGE`.
    pub fn target_facts(self) -> usize {
        let (var, default) = match self {
            Scale::Small => ("OBDA_SCALE_SMALL", 60_000),
            Scale::Large => ("OBDA_SCALE_LARGE", 300_000),
        };
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    pub fn label(self) -> &'static str {
        match self {
            Scale::Small => "small (15M-regime)",
            Scale::Large => "large (100M-regime)",
        }
    }
}

/// A generated dataset: ontology + ABox + dependency sets.
pub struct Dataset {
    pub onto: UnivOntology,
    pub abox: ABox,
    pub deps: Dependencies,
    pub facts: usize,
}

impl Dataset {
    pub fn build(scale: Scale) -> Self {
        Self::build_with_facts(scale.target_facts())
    }

    /// Build a dataset with an explicit fact-count target (used by
    /// criterion benches, which want small fixed fixtures).
    pub fn build_with_facts(target_facts: usize) -> Self {
        let mut onto = UnivOntology::build();
        let config = GenConfig {
            target_facts,
            ..Default::default()
        };
        let (abox, report) = generate(&mut onto, &config);
        let deps = Dependencies::compute(&onto.voc, &onto.tbox);
        Dataset {
            onto,
            abox,
            deps,
            facts: report.facts,
        }
    }

    pub fn engine(&self, layout: LayoutKind, profile: EngineProfile) -> Engine {
        Engine::load(&self.abox, &self.onto.voc, layout, profile)
    }

    pub fn workload(&self) -> Vec<WorkloadQuery> {
        obda_lubm::workload(&self.onto)
    }
}

/// Which cost estimator a strategy run consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// The engine's own explain (GDL/RDBMS in the figures).
    Rdbms,
    /// The external textbook model (GDL/ext).
    Ext,
}

/// One measured cell of a figure.
#[derive(Debug, Clone)]
pub struct Cell {
    pub query: String,
    pub strategy: String,
    /// Wall-clock execution time of the chosen reformulation.
    pub wall: Option<Duration>,
    /// Simulated (profile-scaled work-unit) time.
    pub simulated: Option<Duration>,
    /// SQL statement size shipped to the engine.
    pub sql_bytes: usize,
    /// Engine error, e.g. statement too long (Figure 3's missing bars).
    pub error: Option<String>,
    /// Number of result rows.
    pub rows: usize,
    /// Union terms in the chosen reformulation.
    pub union_terms: usize,
}

/// Choose a reformulation under `strategy` and evaluate it on `engine`.
pub fn run_cell(
    dataset: &Dataset,
    engine: &Engine,
    query: &WorkloadQuery,
    strategy: &Strategy,
    estimator: EstimatorKind,
    label: &str,
) -> Cell {
    let chosen = choose(dataset, engine, &query.cq, strategy, estimator);
    let union_terms = chosen.fol.equivalent_cq_count();
    match engine.evaluate(&chosen.fol) {
        Ok(outcome) => Cell {
            query: query.name.clone(),
            strategy: label.to_owned(),
            wall: Some(outcome.metrics.wall),
            simulated: Some(outcome.simulated),
            sql_bytes: outcome.sql_bytes,
            error: None,
            rows: outcome.rows.len(),
            union_terms,
        },
        Err(EngineError::StatementTooLong { size, limit }) => Cell {
            query: query.name.clone(),
            strategy: label.to_owned(),
            wall: None,
            simulated: None,
            sql_bytes: size,
            error: Some(format!("statement too long ({size} > {limit})")),
            rows: 0,
            union_terms,
        },
        Err(other) => Cell {
            query: query.name.clone(),
            strategy: label.to_owned(),
            wall: None,
            simulated: None,
            sql_bytes: 0,
            error: Some(other.to_string()),
            rows: 0,
            union_terms,
        },
    }
}

/// Run strategy selection with the right estimator wiring.
pub fn choose(
    dataset: &Dataset,
    engine: &Engine,
    cq: &CQ,
    strategy: &Strategy,
    estimator: EstimatorKind,
) -> Chosen {
    match estimator {
        EstimatorKind::Rdbms => {
            let est = ExplainEstimator::new(engine);
            choose_reformulation(cq, &dataset.onto.tbox, &dataset.deps, &est, strategy)
        }
        EstimatorKind::Ext => {
            let est = engine.ext_cost_model();
            choose_with(&est, dataset, cq, strategy)
        }
    }
}

fn choose_with(est: &dyn CostEstimator, dataset: &Dataset, cq: &CQ, strategy: &Strategy) -> Chosen {
    choose_reformulation(cq, &dataset.onto.tbox, &dataset.deps, est, strategy)
}

/// Render cells as a fixed-width table grouped by query.
pub fn render_table(title: &str, cells: &[Cell]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "{:<6} {:<22} {:>10} {:>10} {:>9} {:>8} {:>10}  {}",
        "query", "strategy", "wall_ms", "sim_ms", "rows", "unions", "sql_bytes", "note"
    );
    for c in cells {
        let wall = c
            .wall
            .map(|d| format!("{:.2}", d.as_secs_f64() * 1e3))
            .unwrap_or_else(|| "-".into());
        let sim = c
            .simulated
            .map(|d| format!("{:.2}", d.as_secs_f64() * 1e3))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "{:<6} {:<22} {:>10} {:>10} {:>9} {:>8} {:>10}  {}",
            c.query,
            c.strategy,
            wall,
            sim,
            c.rows,
            c.union_terms,
            c.sql_bytes,
            c.error.as_deref().unwrap_or("")
        );
    }
    out
}

/// Format a duration in milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// The `p`-th percentile of an unsorted latency sample, by the
/// nearest-rank method. Shared with the server's metrics registry so the
/// bench tools and `SHOW metrics` agree on what "p99" means.
pub use obda_rdbms::observe::percentile;

/// Hand-rolled machine-readable benchmark output (the workspace has no
/// JSON dependency, deliberately). `BENCH_qps.json` is a single
/// top-level object whose sections (`"qps"`, `"soak"`, …) are each
/// written by one tool; [`benchjson::merge_section`] lets the tools run
/// in any order without clobbering each other's sections.
pub mod benchjson {
    use std::path::Path;

    /// A flat JSON object under construction; values are pre-rendered.
    #[derive(Default, Clone)]
    pub struct JsonObj {
        fields: Vec<(String, String)>,
    }

    impl JsonObj {
        pub fn new() -> Self {
            Self::default()
        }

        pub fn num(mut self, key: &str, value: f64) -> Self {
            // JSON has no NaN/Inf; clamp to null rather than emit junk.
            let rendered = if value.is_finite() {
                format!("{value:.3}")
            } else {
                "null".to_string()
            };
            self.fields.push((key.to_string(), rendered));
            self
        }

        pub fn int(mut self, key: &str, value: u64) -> Self {
            self.fields.push((key.to_string(), value.to_string()));
            self
        }

        pub fn str(mut self, key: &str, value: &str) -> Self {
            let escaped: String = value
                .chars()
                .flat_map(|c| match c {
                    '"' => vec!['\\', '"'],
                    '\\' => vec!['\\', '\\'],
                    '\n' => vec!['\\', 'n'],
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect();
            self.fields
                .push((key.to_string(), format!("\"{escaped}\"")));
            self
        }

        /// Render as a single-line object — the merge format relies on
        /// one section per line.
        pub fn render(&self) -> String {
            let body: Vec<String> = self
                .fields
                .iter()
                .map(|(k, v)| format!("\"{k}\": {v}"))
                .collect();
            format!("{{{}}}", body.join(", "))
        }
    }

    /// Write or update `key` in the JSON file at `path`, preserving
    /// other sections previously written *by this module* (each section
    /// lives on its own line). A file not in this shape is replaced —
    /// only our own tools write it.
    pub fn merge_section(path: &Path, key: &str, obj: &JsonObj) -> std::io::Result<()> {
        let mut sections: Vec<(String, String)> = Vec::new();
        if let Ok(existing) = std::fs::read_to_string(path) {
            for line in existing.lines() {
                let t = line.trim().trim_end_matches(',');
                if let Some(rest) = t.strip_prefix('"') {
                    if let Some((name, value)) = rest.split_once("\": ") {
                        sections.push((name.to_string(), value.to_string()));
                    }
                }
            }
        }
        match sections.iter_mut().find(|(name, _)| name == key) {
            Some(slot) => slot.1 = obj.render(),
            None => sections.push((key.to_string(), obj.render())),
        }
        let body: Vec<String> = sections
            .iter()
            .map(|(name, value)| format!("  \"{name}\": {value}"))
            .collect();
        std::fs::write(path, format!("{{\n{}\n}}\n", body.join(",\n")))
    }

    /// Read one numeric field back out of a file written by
    /// [`merge_section`] (one `"section": {…}` per line). Returns `None`
    /// if the file, section, or key is missing or non-numeric — callers
    /// decide whether that is fatal (the CI regression gate does).
    pub fn read_num(path: &Path, section: &str, key: &str) -> Option<f64> {
        let text = std::fs::read_to_string(path).ok()?;
        let section_prefix = format!("\"{section}\": ");
        for line in text.lines() {
            let t = line.trim().trim_end_matches(',');
            if let Some(obj) = t.strip_prefix(section_prefix.as_str()) {
                let key_prefix = format!("\"{key}\": ");
                let at = obj.find(&key_prefix)? + key_prefix.len();
                let rest = &obj[at..];
                let end = rest.find([',', '}']).unwrap_or(rest.len());
                return rest[..end].trim().parse().ok();
            }
        }
        None
    }

    /// The output path: `OBDA_BENCH_JSON`, or `BENCH_qps.json` at the
    /// **workspace root**. The file used to be resolved against the
    /// invocation CWD, so running a bench tool from a crate directory
    /// scattered stray copies around the tree (and CI diffed the wrong
    /// file); anchoring two levels above this crate's manifest pins it.
    pub fn default_path() -> std::path::PathBuf {
        if let Some(p) = std::env::var_os("OBDA_BENCH_JSON") {
            return p.into();
        }
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/bench sits two levels below the workspace root");
        root.join("BENCH_qps.json")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        std::env::set_var("OBDA_SCALE_SMALL", "2000");
        Dataset::build(Scale::Small)
    }

    #[test]
    fn dataset_builds_and_loads() {
        let d = tiny_dataset();
        assert!(d.facts >= 2000);
        let engine = d.engine(LayoutKind::Simple, EngineProfile::pg_like());
        assert!(engine.stats().total_facts >= 2000);
        assert_eq!(d.workload().len(), 13);
    }

    #[test]
    fn run_cell_produces_measurements() {
        let d = tiny_dataset();
        let engine = d.engine(LayoutKind::Simple, EngineProfile::pg_like());
        let wl = d.workload();
        let q12 = wl.iter().find(|q| q.name == "Q12").unwrap();
        let cell = run_cell(
            &d,
            &engine,
            q12,
            &Strategy::CrootJucq,
            EstimatorKind::Ext,
            "Croot",
        );
        assert!(cell.error.is_none(), "{:?}", cell.error);
        assert!(cell.wall.is_some());
        assert!(cell.sql_bytes > 0);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sample: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&sample, 50.0), Duration::from_millis(50));
        assert_eq!(percentile(&sample, 99.0), Duration::from_millis(99));
        assert_eq!(percentile(&sample, 100.0), Duration::from_millis(100));
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
        assert_eq!(
            percentile(&[Duration::from_millis(7)], 99.0),
            Duration::from_millis(7)
        );
    }

    #[test]
    fn benchjson_sections_merge_without_clobbering() {
        let dir = std::env::temp_dir().join(format!("benchjson-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_qps.json");
        let qps = benchjson::JsonObj::new()
            .num("warm_qps", 1234.5)
            .str("note", "a \"quoted\" note");
        benchjson::merge_section(&path, "qps", &qps).unwrap();
        let soak = benchjson::JsonObj::new().int("sessions", 4);
        benchjson::merge_section(&path, "soak", &soak).unwrap();
        // Overwrite qps; soak must survive.
        let qps2 = benchjson::JsonObj::new().num("warm_qps", 999.0);
        benchjson::merge_section(&path, "qps", &qps2).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"qps\": {\"warm_qps\": 999.000}"), "{text}");
        assert!(text.contains("\"soak\": {\"sessions\": 4}"), "{text}");
        assert!(!text.contains("1234.5"), "{text}");
        // Round-trip: read_num recovers what merge_section wrote.
        assert_eq!(benchjson::read_num(&path, "qps", "warm_qps"), Some(999.0));
        assert_eq!(benchjson::read_num(&path, "soak", "sessions"), Some(4.0));
        assert_eq!(benchjson::read_num(&path, "qps", "missing"), None);
        assert_eq!(benchjson::read_num(&path, "missing", "warm_qps"), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_path_is_workspace_rooted() {
        // Regardless of the invocation CWD, the default lands next to the
        // workspace manifest (unless OBDA_BENCH_JSON overrides it).
        let path = benchjson::default_path();
        if std::env::var_os("OBDA_BENCH_JSON").is_none() {
            assert_eq!(path.file_name().unwrap(), "BENCH_qps.json");
            let root = path.parent().unwrap();
            let manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap();
            assert!(
                manifest.contains("[workspace]"),
                "default path must sit at the workspace root, got {}",
                path.display()
            );
        }
    }

    #[test]
    fn render_table_formats() {
        let cell = Cell {
            query: "Q1".into(),
            strategy: "UCQ".into(),
            wall: Some(Duration::from_millis(5)),
            simulated: Some(Duration::from_millis(7)),
            sql_bytes: 123,
            error: None,
            rows: 10,
            union_terms: 42,
        };
        let table = render_table("test", &[cell]);
        assert!(table.contains("Q1"));
        assert!(table.contains("5.00"));
    }
}
