//! The perf-trajectory regression gate: compares a freshly emitted
//! `BENCH_qps.json` against the committed baseline and fails if the
//! warm-path QPS regressed by more than the tolerance (15% by default,
//! override via `OBDA_BENCH_TOLERANCE`, a fraction).
//!
//! Usage: `bench_guard <baseline.json> <current.json>`
//!
//! Benchmarks on shared CI runners are noisy, so the gate is one-sided
//! and generous: it only catches real cliffs (an accidental O(n²), a
//! debug-assert left in the hot path), not jitter. Both files must carry
//! a `"qps"` section with `warm_qps` — a missing section means the run
//! that should have produced it did not happen, which is itself a
//! failure (exit 2).
//!
//! The gate also enforces the observability bargain: when the current
//! run carries the `metrics_on_qps` / `metrics_off_qps` pair, enabling
//! the metrics registry must cost < 5% warm QPS (override via
//! `OBDA_METRICS_TOLERANCE`, a fraction). Absent keys skip the check —
//! older baselines predate the pair.
//!
//! And the §6.3 rescue: when the current run carries the
//! `constraint_prune` section, `q13_dph_answerable` must be 1 — the
//! pruned Q13 root-cover statement fits the DB2-like limit on the DPH
//! layout and returns the reference rows. Absent section skips the
//! check (runs that didn't execute the constraint_prune bench).

use std::path::Path;

use obda_bench::benchjson;

fn warm_qps(path: &str) -> f64 {
    match benchjson::read_num(Path::new(path), "qps", "warm_qps") {
        Some(v) if v > 0.0 => v,
        _ => {
            eprintln!("FAIL: no positive qps.warm_qps in {path}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = args.as_slice() else {
        eprintln!("usage: bench_guard <baseline.json> <current.json>");
        std::process::exit(2);
    };
    let tolerance: f64 = std::env::var("OBDA_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.15);

    let baseline = warm_qps(baseline_path);
    let current = warm_qps(current_path);
    let ratio = current / baseline;
    println!(
        "warm_qps: baseline {baseline:.1} q/s, current {current:.1} q/s ({:.1}% of baseline, tolerance -{:.0}%)",
        ratio * 100.0,
        tolerance * 100.0
    );
    if ratio < 1.0 - tolerance {
        eprintln!(
            "FAIL: warm QPS regressed {:.1}% vs the committed trajectory (allowed: {:.0}%)",
            (1.0 - ratio) * 100.0,
            tolerance * 100.0
        );
        std::process::exit(1);
    }

    // Observability overhead gate on the current run, when measured.
    let on = benchjson::read_num(Path::new(current_path), "qps", "metrics_on_qps");
    let off = benchjson::read_num(Path::new(current_path), "qps", "metrics_off_qps");
    match (on, off) {
        (Some(on), Some(off)) if on > 0.0 && off > 0.0 => {
            let metrics_tolerance: f64 = std::env::var("OBDA_METRICS_TOLERANCE")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.05);
            let overhead = 1.0 - on / off;
            println!(
                "metrics overhead: on {on:.1} q/s vs off {off:.1} q/s ({:.1}%, tolerance {:.0}%)",
                overhead * 100.0,
                metrics_tolerance * 100.0
            );
            if overhead > metrics_tolerance {
                eprintln!(
                    "FAIL: metrics registry costs {:.1}% warm QPS (allowed: {:.0}%)",
                    overhead * 100.0,
                    metrics_tolerance * 100.0
                );
                std::process::exit(1);
            }
        }
        _ => println!("metrics overhead: not measured in {current_path}, skipping"),
    }

    // Constraint-pruning answerability gate on the current run, when
    // the constraint_prune bench ran.
    match benchjson::read_num(
        Path::new(current_path),
        "constraint_prune",
        "q13_dph_answerable",
    ) {
        Some(v) => {
            let off = benchjson::read_num(
                Path::new(current_path),
                "constraint_prune",
                "q13_dph_sql_bytes_off",
            )
            .unwrap_or(0.0);
            let on = benchjson::read_num(
                Path::new(current_path),
                "constraint_prune",
                "q13_dph_sql_bytes_on",
            )
            .unwrap_or(0.0);
            println!(
                "constraint pruning: Q13 DPH statement {off:.0} -> {on:.0} bytes, answerable={v:.0}"
            );
            if v != 1.0 {
                eprintln!(
                    "FAIL: DPH Q13 is not answerable under the DB2 statement limit with pruning on"
                );
                std::process::exit(1);
            }
        }
        None => println!("constraint pruning: not measured in {current_path}, skipping"),
    }

    println!(
        "CHECK PASSED: warm QPS within {:.0}% of the committed trajectory",
        tolerance * 100.0
    );
}
