//! The serving-layer throughput benchmark: N client threads replaying a
//! mixed LUBM workload against one [`Server`], cold pipeline vs. warm
//! plan cache, 1 vs. 4 client threads.
//!
//! Reported numbers:
//!
//! * **cold QPS** — every call runs the full per-query pipeline
//!   (reformulation + planning + SQL sizing + execution), cache disabled;
//! * **warm QPS** — the same replay against a primed plan cache: each
//!   call fetches the stored compilation by canonical key and only
//!   executes (the §6.4-dominant estimation/search work is amortized);
//! * **client scaling** — warm QPS with 1 vs. 4 client threads sharing
//!   one `Arc`-snapshot server (inter-query concurrency).
//!
//! `--check` exits non-zero unless warm ≥ 5× cold and 4-thread ≥ 2×
//! 1-thread — the acceptance bars CI's threaded stress job enforces.
//!
//! Per-query latency percentiles (p50/p99, single client) for the cold
//! and warm paths are printed and merged into `BENCH_qps.json` under the
//! `"qps"` section (path override: `OBDA_BENCH_JSON`).
//!
//! Environment: `OBDA_QPS_FACTS` (default 20 000) scales the ABox;
//! `OBDA_QPS_ROUNDS` (default 40) scales the warm replay length.

use std::time::{Duration, Instant};

use obda_bench::{benchjson, ms, percentile};
use obda_core::Strategy;
use obda_lubm::{generate, star_query, workload, GenConfig, UnivOntology};
use obda_query::CQ;
use obda_rdbms::{ExecMode, Server, ServerConfig};

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Bench {
    onto: UnivOntology,
    abox: obda_dllite::ABox,
    queries: Vec<(String, CQ)>,
}

impl Bench {
    fn server(&self, cache: bool, threads: usize, exec_mode: ExecMode) -> Server {
        Server::new(
            self.onto.voc.clone(),
            self.onto.tbox.clone(),
            &self.abox,
            ServerConfig {
                reform_strategy: Strategy::Gdl { time_budget: None },
                cache_plans: cache,
                threads,
                exec_mode,
                ..ServerConfig::default()
            },
        )
    }

    /// Replay the mixed workload `rounds` times across `clients` threads
    /// against `srv`; returns queries-per-second.
    fn replay_qps(&self, srv: &Server, clients: usize, rounds: usize) -> f64 {
        let start = Instant::now();
        std::thread::scope(|s| {
            for c in 0..clients {
                let queries = &self.queries;
                s.spawn(move || {
                    for r in 0..rounds {
                        for k in 0..queries.len() {
                            let (_, cq) = &queries[(k + c + r) % queries.len()];
                            let out = srv.query(cq).expect("pg-like: no statement limit");
                            std::hint::black_box(out.outcome.rows.len());
                        }
                    }
                });
            }
        });
        let total = (clients * rounds * self.queries.len()) as f64;
        total / start.elapsed().as_secs_f64()
    }

    /// Single-client replay that records per-query wall latency.
    fn replay_latencies(&self, srv: &Server, rounds: usize) -> Vec<Duration> {
        let mut latencies = Vec::with_capacity(rounds * self.queries.len());
        for r in 0..rounds {
            for k in 0..self.queries.len() {
                let (_, cq) = &self.queries[(k + r) % self.queries.len()];
                let t0 = Instant::now();
                let out = srv.query(cq).expect("pg-like: no statement limit");
                latencies.push(t0.elapsed());
                std::hint::black_box(out.outcome.rows.len());
            }
        }
        latencies
    }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let facts = env_usize("OBDA_QPS_FACTS", 20_000);
    let rounds = env_usize("OBDA_QPS_ROUNDS", 40);

    let mut onto = UnivOntology::build();
    let (abox, report) = generate(
        &mut onto,
        &GenConfig {
            target_facts: facts,
            ..Default::default()
        },
    );
    // The mixed serving workload: every LUBM query plus one star shape.
    // (All 14 shapes participate; GDL compiles each exactly once on the
    // warm path, so even the heaviest reformulations are amortized.)
    let mut queries: Vec<(String, CQ)> = workload(&onto)
        .into_iter()
        .map(|w| (w.name, w.cq))
        .collect();
    queries.push(("A4".to_owned(), star_query(&onto, 4)));
    let bench = Bench {
        onto,
        abox,
        queries,
    };
    println!(
        "dataset: {} facts, {} query shapes, GDL reformulation",
        report.facts,
        bench.queries.len()
    );

    // Cold: full pipeline per call, one client. One pass over the
    // workload is enough signal — the pipeline is orders of magnitude
    // slower than cached execution.
    let cold_srv = bench.server(false, 1, ExecMode::default());
    let cold_lat = bench.replay_latencies(&cold_srv, 1);
    let cold_qps = cold_lat.len() as f64 / cold_lat.iter().sum::<Duration>().as_secs_f64();
    let (cold_p50, cold_p99) = (percentile(&cold_lat, 50.0), percentile(&cold_lat, 99.0));
    println!(
        "cold  pipeline      : {cold_qps:>10.1} q/s   (p50 {} ms, p99 {} ms)",
        ms(cold_p50),
        ms(cold_p99)
    );

    // Warm: primed cache, one client, on the default (vectorized)
    // native pipeline.
    let warm_srv = bench.server(true, 1, ExecMode::default());
    let _ = bench.replay_qps(&warm_srv, 1, 1); // prime (compiles once)
    let warm_lat = bench.replay_latencies(&warm_srv, rounds);
    let warm_qps = warm_lat.len() as f64 / warm_lat.iter().sum::<Duration>().as_secs_f64();
    let (warm_p50, warm_p99) = (percentile(&warm_lat, 50.0), percentile(&warm_lat, 99.0));
    let speedup = warm_qps / cold_qps;
    println!(
        "warm  plan cache    : {warm_qps:>10.1} q/s   ({speedup:.1}x cold, p50 {} ms, p99 {} ms)",
        ms(warm_p50),
        ms(warm_p99)
    );

    // The same warm replay on the row-at-a-time pipeline — the pre-PR
    // execution path, kept as a measured baseline so the tracked JSON
    // records the vectorized speedup, not an anecdote.
    let row_srv = bench.server(true, 1, ExecMode::Row);
    let _ = bench.replay_qps(&row_srv, 1, 1);
    let row_lat = bench.replay_latencies(&row_srv, rounds);
    let row_warm_qps = row_lat.len() as f64 / row_lat.iter().sum::<Duration>().as_secs_f64();
    let vectorized_speedup = warm_qps / row_warm_qps;
    println!(
        "warm  row pipeline  : {row_warm_qps:>10.1} q/s   (vectorized is {vectorized_speedup:.2}x)"
    );

    // Client scaling on the warm server.
    let qps1 = bench.replay_qps(&warm_srv, 1, rounds);
    let qps4 = bench.replay_qps(&warm_srv, 4, rounds);
    let scaling = qps4 / qps1;
    println!("warm  1 client      : {qps1:>10.1} q/s");
    println!("warm  4 clients     : {qps4:>10.1} q/s   ({scaling:.2}x scaling)");

    // Observability overhead: the same warm replay with the metrics
    // registry recording vs. gated off. The registry is lock-free
    // (relaxed atomics), so the pair should be within noise; the CI
    // bench guard enforces < 5%. Interleave two runs per mode and keep
    // each mode's best, so a scheduler hiccup in one run cannot fake a
    // regression.
    let mut metrics_on_qps = 0.0f64;
    let mut metrics_off_qps = 0.0f64;
    for _ in 0..2 {
        metrics_on_qps = metrics_on_qps.max(bench.replay_qps(&warm_srv, 1, rounds));
        warm_srv.observe().set_enabled(false);
        metrics_off_qps = metrics_off_qps.max(bench.replay_qps(&warm_srv, 1, rounds));
        warm_srv.observe().set_enabled(true);
    }
    let overhead = 1.0 - metrics_on_qps / metrics_off_qps;
    println!(
        "warm  metrics on    : {metrics_on_qps:>10.1} q/s   ({:.1}% overhead vs off: {metrics_off_qps:.1} q/s)",
        overhead * 100.0
    );

    let stats = warm_srv.cache_stats();
    println!(
        "cache: {} hits / {} misses / {} entries",
        stats.hits, stats.misses, stats.entries
    );

    let path = benchjson::default_path();
    let section = benchjson::JsonObj::new()
        .int("facts", report.facts as u64)
        .num("cold_qps", cold_qps)
        .num("cold_p50_ms", cold_p50.as_secs_f64() * 1e3)
        .num("cold_p99_ms", cold_p99.as_secs_f64() * 1e3)
        .num("warm_qps", warm_qps)
        .num("warm_p50_ms", warm_p50.as_secs_f64() * 1e3)
        .num("warm_p99_ms", warm_p99.as_secs_f64() * 1e3)
        .num("warm_speedup", speedup)
        .num("warm_qps_row_pipeline", row_warm_qps)
        .num("vectorized_speedup", vectorized_speedup)
        .num("qps_1_client", qps1)
        .num("qps_4_clients", qps4)
        .num("scaling_4_clients", scaling)
        .num("metrics_on_qps", metrics_on_qps)
        .num("metrics_off_qps", metrics_off_qps);
    if let Err(e) = benchjson::merge_section(&path, "qps", &section) {
        eprintln!("cannot write {}: {e}", path.display());
    } else {
        println!("wrote {} [qps]", path.display());
    }

    if check {
        let mut failed = false;
        if speedup < 5.0 {
            eprintln!("FAIL: warm-cache speedup {speedup:.1}x < 5x");
            failed = true;
        }
        // Client scaling needs hardware to scale onto: enforce the 2x
        // bar only where >= 4 CPUs are available (CI runners are), and
        // report it as unmeasurable elsewhere.
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cpus >= 4 {
            if scaling < 2.0 {
                eprintln!("FAIL: 4-client scaling {scaling:.2}x < 2x on {cpus} CPUs");
                failed = true;
            }
        } else {
            println!("note: scaling bar skipped ({cpus} CPU(s) available)");
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "CHECK PASSED: warm >= 5x cold{}",
            if cpus >= 4 {
                ", 4 clients >= 2x 1 client"
            } else {
                ""
            }
        );
    }
}
