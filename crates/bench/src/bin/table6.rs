//! Table 6: search-space sizes for the star queries A3–A6 (A6 = Q1).
//!
//! Paper values: |Lq| = 2 / 7 / 71 / 93, |Gq| = 4 / 67 / 5674 / >20000
//! (they stopped counting at 20 003), and the number of covers explored by
//! GDL growing only moderately (2+4 … 18+59). The reproduction target is
//! the *shape*: Gq explodes combinatorially while GDL's exploration stays
//! near-linear, making EDL impractical beyond very small queries.

use obda_bench::{Dataset, Scale};
use obda_core::{gdl, genspace_size, lattice_size, GdlConfig, QueryAnalysis, StructuralEstimator};
use obda_lubm::star_query;

const GQ_CAP: usize = 20_000;

fn main() {
    std::env::set_var(
        "OBDA_SCALE_SMALL",
        std::env::var("OBDA_SCALE_SMALL").unwrap_or_else(|_| "20000".into()),
    );
    let dataset = Dataset::build(Scale::Small);
    let engine = dataset.engine(
        obda_rdbms::LayoutKind::Simple,
        obda_rdbms::EngineProfile::pg_like(),
    );
    let ext = engine.ext_cost_model();

    println!("# Table 6 — search-space sizes for A3..A6 (A6 = Q1)");
    println!(
        "{:<8} {:>8} {:>10} {:>14} {:>14} {:>12}",
        "query", "|Lq|", "|Gq|", "GDL-Lq-expl", "GDL-Gq-expl", "gdl_ms"
    );
    for arity in 3..=6usize {
        let q = star_query(&dataset.onto, arity);
        let analysis = QueryAnalysis::new(&q, &dataset.deps);
        let lq = lattice_size(&analysis, 0);
        let (gq, truncated) = genspace_size(&analysis, GQ_CAP);
        let out = gdl(
            &q,
            &dataset.onto.tbox,
            &analysis,
            &ext,
            &GdlConfig::default(),
        );
        println!(
            "{:<8} {:>8} {:>10} {:>14} {:>14} {:>12.1}",
            format!("A{arity}"),
            lq,
            if truncated {
                format!(">{gq}")
            } else {
                format!("{gq}")
            },
            out.explored_simple,
            out.explored_generalized,
            out.elapsed.as_secs_f64() * 1e3,
        );
    }
    println!();
    println!("# EDL vs GDL agreement (structural estimator, A3..A5)");
    for arity in 3..=5usize {
        let q = star_query(&dataset.onto, arity);
        let analysis = QueryAnalysis::new(&q, &dataset.deps);
        let e = obda_core::edl(
            &q,
            &dataset.onto.tbox,
            &analysis,
            &StructuralEstimator,
            GQ_CAP,
            true,
        );
        let g = gdl(
            &q,
            &dataset.onto.tbox,
            &analysis,
            &StructuralEstimator,
            &GdlConfig::default(),
        );
        println!(
            "A{arity}: edl cost {:.1} ({} covers), gdl cost {:.1} ({} covers) — {}",
            e.cost,
            e.explored_simple + e.explored_generalized,
            g.cost,
            g.explored_simple + g.explored_generalized,
            if (e.cost - g.cost).abs() < 1e-9 {
                "coincide (cf. §6.2)"
            } else {
                "gdl suboptimal"
            }
        );
    }
}
