//! Constraint-driven reformulation pruning: before/after statement
//! sizes and latencies on the LUBM workload, and the §6.3 headline —
//! the root-cover JUCQ for Q13 on the DPH (RDF) layout, rejected by the
//! DB2-like statement-size limit when generated naively, shrinks under
//! ABox completeness constraints to a servable statement that returns
//! the correct rows.
//!
//! Reported numbers (merged into `BENCH_qps.json` under the
//! `"constraint_prune"` section; path override: `OBDA_BENCH_JSON`):
//!
//! * `q13_dph_sql_bytes_off` / `q13_dph_sql_bytes_on` — the Q13
//!   root-cover statement on the DPH layout, unpruned vs pruned;
//! * `q13_dph_answerable` — 1 when the pruned statement fits the DB2
//!   limit **and** the SQL backend's rows match the native reference;
//! * `workload_sql_bytes_off` / `workload_sql_bytes_on` — summed UCQ
//!   statement sizes across the 13 workload queries (simple layout);
//! * `workload_arms_off` / `workload_arms_on` — summed union arms;
//! * `q13_eval_ms_off` / `q13_eval_ms_on` — native evaluation of the
//!   (un)pruned UCQ on the simple layout, best of three;
//! * `mine_ms` — one constraint-mining pass over the dataset.
//!
//! `--check` exits non-zero unless Q13 is answerable — the bench_guard
//! acceptance bar. Environment: `OBDA_CONSTRAINT_FACTS` (default
//! 20 000) scales the ABox.

use std::path::PathBuf;
use std::time::Instant;

use obda_bench::{benchjson, Dataset};
use obda_core::{
    choose_reformulation, choose_reformulation_constrained, Strategy, StructuralEstimator,
};
use obda_dllite::ConstraintSet;
use obda_query::FolQuery;
use obda_rdbms::{Backend, EngineProfile, EvalOptions, LayoutKind};

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let facts = env_usize("OBDA_CONSTRAINT_FACTS", 20_000);
    let ds = Dataset::build_with_facts(facts);
    println!("dataset: {} facts", ds.facts);

    let started = Instant::now();
    let cons = ConstraintSet::mine_from_abox(&ds.onto.tbox, &ds.abox);
    let mine_ms = started.elapsed().as_secs_f64() * 1e3;
    let stats = cons.stats();
    println!(
        "mined {} constraints in {mine_ms:.1} ms ({} empty preds, {} unary, {} role, {} pairs checked)",
        cons.len(),
        stats.empty_preds,
        stats.unary_inclusions,
        stats.role_inclusions,
        stats.pairs_checked,
    );

    let estimator = StructuralEstimator;
    let queries = ds.workload();

    // Workload-wide statement sizes (UCQ route, simple layout).
    let simple = ds.engine(LayoutKind::Simple, EngineProfile::pg_like());
    let (mut bytes_off, mut bytes_on) = (0usize, 0usize);
    let (mut arms_off, mut arms_on) = (0usize, 0usize);
    let mut q13: Option<(FolQuery, FolQuery)> = None;
    println!(
        "\n{:<6} {:>6} {:>6} {:>12} {:>12}",
        "query", "arms", "kept", "bytes_off", "bytes_on"
    );
    for wq in &queries {
        let off = choose_reformulation(&wq.cq, &ds.onto.tbox, &ds.deps, &estimator, &Strategy::Ucq);
        let on = choose_reformulation_constrained(
            &wq.cq,
            &ds.onto.tbox,
            &ds.deps,
            &estimator,
            &Strategy::Ucq,
            Some(&cons),
        );
        let p = on.pruned.expect("constrained route reports stats");
        let (b_off, b_on) = (
            simple.sql_for(&off.fol).len(),
            simple.sql_for(&on.fol).len(),
        );
        bytes_off += b_off;
        bytes_on += b_on;
        arms_off += p.arms_in;
        arms_on += p.kept;
        println!(
            "{:<6} {:>6} {:>6} {:>12} {:>12}",
            wq.name, p.arms_in, p.kept, b_off, b_on
        );
        if wq.name == "Q13" {
            q13 = Some((off.fol.clone(), on.fol.clone()));
        }
    }
    println!(
        "workload totals: arms {arms_off} -> {arms_on}, simple-layout SQL {bytes_off} -> {bytes_on} bytes"
    );
    let (q13_off, q13_on) = q13.expect("workload contains Q13");

    // Q13 native latency, simple layout, best of three.
    let eval_ms = |q: &FolQuery| {
        (0..3)
            .map(|_| {
                let t = Instant::now();
                simple.evaluate(q).expect("pg-like has no limit");
                t.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min)
    };
    let (q13_ms_off, q13_ms_on) = (eval_ms(&q13_off), eval_ms(&q13_on));
    println!("Q13 native eval (simple): off {q13_ms_off:.2} ms, on {q13_ms_on:.2} ms");

    // The §6.3 headline: the Q13 root-cover JUCQ on the DPH layout under
    // the DB2-like statement-size limit.
    let q13_cq = &queries.iter().find(|w| w.name == "Q13").unwrap().cq;
    let croot_off = choose_reformulation(
        q13_cq,
        &ds.onto.tbox,
        &ds.deps,
        &estimator,
        &Strategy::CrootJucq,
    );
    let croot_on = choose_reformulation_constrained(
        q13_cq,
        &ds.onto.tbox,
        &ds.deps,
        &estimator,
        &Strategy::CrootJucq,
        Some(&cons),
    );
    let db2 = EngineProfile::db2_like();
    let limit = db2
        .max_statement_bytes
        .expect("the DB2 profile models the §6.3 limit");
    let dph = ds.engine(LayoutKind::Dph, db2).with_backend(Backend::Sql);
    let dph_bytes_off = dph.sql_for(&croot_off.fol).len();
    let sql_on = dph.sql_for(&croot_on.fol);
    let dph_bytes_on = sql_on.len();
    println!(
        "Q13 root-cover DPH statement: off {dph_bytes_off} bytes, on {dph_bytes_on} bytes (limit {limit})"
    );

    let answerable = if dph_bytes_on <= limit {
        // Correctness, not just size: the pruned statement's rows must
        // match the native reference on the unpruned reformulation.
        let native = ds.engine(LayoutKind::Simple, EngineProfile::pg_like());
        let mut want = native.evaluate(&q13_off).expect("reference").rows;
        want.sort();
        let opts = EvalOptions {
            sql_text: Some(&sql_on),
            sql_bytes: Some(dph_bytes_on),
            ..Default::default()
        };
        let mut rows = dph
            .evaluate_opts(&croot_on.fol, &opts)
            .expect("pruned statement fits the limit")
            .rows;
        rows.sort();
        assert_eq!(rows, want, "pruned DPH Q13 must return the reference rows");
        println!(
            "Q13 on DPH under the DB2 limit: ANSWERED, {} rows (reference parity)",
            rows.len()
        );
        true
    } else {
        println!("Q13 on DPH under the DB2 limit: still too long after pruning");
        false
    };

    let path: PathBuf = std::env::var_os("OBDA_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(benchjson::default_path);
    let obj = benchjson::JsonObj::new()
        .int("facts", ds.facts as u64)
        .num("mine_ms", mine_ms)
        .int("workload_sql_bytes_off", bytes_off as u64)
        .int("workload_sql_bytes_on", bytes_on as u64)
        .int("workload_arms_off", arms_off as u64)
        .int("workload_arms_on", arms_on as u64)
        .num("q13_eval_ms_off", q13_ms_off)
        .num("q13_eval_ms_on", q13_ms_on)
        .int("q13_dph_sql_bytes_off", dph_bytes_off as u64)
        .int("q13_dph_sql_bytes_on", dph_bytes_on as u64)
        .int("q13_dph_answerable", answerable as u64);
    benchjson::merge_section(&path, "constraint_prune", &obj).expect("write BENCH_qps.json");
    println!("merged constraint_prune section into {}", path.display());

    if check && !answerable {
        eprintln!("FAIL: DPH Q13 remains unanswerable under the DB2 limit with pruning on");
        std::process::exit(1);
    }
    if check {
        println!("CHECK PASSED: DPH Q13 answerable under the DB2 statement-size limit");
    }
}
