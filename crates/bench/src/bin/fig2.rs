//! Figure 2: evaluation time on the PostgreSQL-like engine, simple layout,
//! of four reformulations per query — the standard UCQ, the Croot JUCQ,
//! GDL with the engine's cost model (GDL/RDBMS) and GDL with the external
//! cost model (GDL/ext) — at two dataset scales.
//!
//! Paper findings to reproduce in shape: the UCQ is poor (up to ~10×
//! slower); Croot is sometimes far worse than the UCQ; GDL-selected covers
//! win almost everywhere; on the largest reformulations (Q9–Q11) GDL/ext
//! beats GDL/RDBMS because the engine's estimator takes shortcuts on huge
//! unions.

use obda_bench::{render_table, run_cell, Cell, Dataset, EstimatorKind, Scale};
use obda_core::Strategy;
use obda_rdbms::{EngineProfile, LayoutKind};

fn main() {
    for scale in [Scale::Small, Scale::Large] {
        let dataset = Dataset::build(scale);
        let engine = dataset.engine(LayoutKind::Simple, EngineProfile::pg_like());
        println!(
            "# Figure 2 — pg-like engine, simple layout, {} ({} facts)",
            scale.label(),
            dataset.facts
        );
        let mut cells: Vec<Cell> = Vec::new();
        for q in dataset.workload() {
            cells.push(run_cell(
                &dataset,
                &engine,
                &q,
                &Strategy::Ucq,
                EstimatorKind::Ext,
                "UCQ",
            ));
            cells.push(run_cell(
                &dataset,
                &engine,
                &q,
                &Strategy::CrootJucq,
                EstimatorKind::Ext,
                "Croot",
            ));
            cells.push(run_cell(
                &dataset,
                &engine,
                &q,
                &Strategy::Gdl { time_budget: None },
                EstimatorKind::Rdbms,
                "GDL/RDBMS",
            ));
            cells.push(run_cell(
                &dataset,
                &engine,
                &q,
                &Strategy::Gdl { time_budget: None },
                EstimatorKind::Ext,
                "GDL/ext",
            ));
        }
        println!("{}", render_table("Figure 2", &cells));
        summarize(&cells);
        println!();
    }
}

/// Per-query winner summary plus the UCQ/GDL speedup factors.
fn summarize(cells: &[Cell]) {
    let queries: Vec<String> = {
        let mut v: Vec<String> = cells.iter().map(|c| c.query.clone()).collect();
        v.dedup();
        v
    };
    println!("-- speedups (UCQ wall / strategy wall) --");
    for q in queries {
        let of = |s: &str| {
            cells
                .iter()
                .find(|c| c.query == q && c.strategy == s)
                .and_then(|c| c.wall)
        };
        let (Some(ucq), croot, rdbms, ext) =
            (of("UCQ"), of("Croot"), of("GDL/RDBMS"), of("GDL/ext"))
        else {
            continue;
        };
        let f = |d: Option<std::time::Duration>| {
            d.map(|d| format!("{:.2}x", ucq.as_secs_f64() / d.as_secs_f64().max(1e-9)))
                .unwrap_or_else(|| "fail".into())
        };
        println!(
            "{q:<6} croot {:<8} gdl/rdbms {:<8} gdl/ext {:<8}",
            f(croot),
            f(rdbms),
            f(ext)
        );
    }
}
