//! §2.3 / §6.1 workload statistics: per-query atom counts, UCQ and minimal
//! UCQ reformulation sizes, SQL translation lengths under both layouts.
//!
//! Paper reference points: queries of 2–10 atoms (avg 5.77); UCQ
//! reformulations of 35–667 CQs (avg 290.2); Q9's minimal UCQ = 145 CQs
//! running into multi-megabyte SQL on the RDF layout.

use obda_bench::{Dataset, Scale};
use obda_core::{root_cover, QueryAnalysis};
use obda_query::{minimize_ucq, FolQuery};
use obda_rdbms::{EngineProfile, LayoutKind, SqlGenerator, SqlNames};
use obda_reform::perfect_ref_pruned;

fn main() {
    std::env::set_var(
        "OBDA_SCALE_SMALL",
        std::env::var("OBDA_SCALE_SMALL").unwrap_or_else(|_| "20000".into()),
    );
    let dataset = Dataset::build(Scale::Small);
    let dims = dataset.onto.dimensions();
    println!("== ontology ==");
    println!(
        "concepts = {}, roles = {}, constraints = {} (paper: 128 / 34 / 212)",
        dims.concepts, dims.roles, dims.constraints
    );
    println!("facts loaded = {}", dataset.facts);
    println!();

    let names = SqlNames::from_vocabulary(&dataset.onto.voc);
    let gen_simple = SqlGenerator::new(names.clone(), LayoutKind::Simple);
    let gen_dph = SqlGenerator::new(names, LayoutKind::Dph);
    let db2_limit = EngineProfile::db2_like()
        .max_statement_bytes
        .unwrap_or(usize::MAX);

    println!("== workload (paper §6.1: 2–10 atoms, avg 5.77; UCQs 35–667, avg 290.2) ==");
    println!(
        "{:<6} {:>6} {:>8} {:>8} {:>12} {:>12} {:>14}",
        "query", "atoms", "|UCQ|", "|minUCQ|", "sql_simple", "sql_rdf", "rdf>2MB?"
    );
    let mut total_atoms = 0usize;
    let mut total_ucq = 0usize;
    let wl = dataset.workload();
    for q in &wl {
        let ucq = perfect_ref_pruned(&q.cq, &dataset.onto.tbox);
        let minimal = minimize_ucq(&ucq);
        let sql_simple = gen_simple.generate(&FolQuery::Ucq(minimal.clone()));
        let sql_rdf = gen_dph.generate(&FolQuery::Ucq(minimal.clone()));
        total_atoms += q.cq.num_atoms();
        total_ucq += ucq.len();
        println!(
            "{:<6} {:>6} {:>8} {:>8} {:>12} {:>12} {:>14}",
            q.name,
            q.cq.num_atoms(),
            ucq.len(),
            minimal.len(),
            sql_simple.len(),
            sql_rdf.len(),
            if sql_rdf.len() > db2_limit {
                "FAILS"
            } else {
                "ok"
            }
        );
    }
    println!(
        "avg atoms = {:.2} (paper 5.77), avg |UCQ| = {:.1} (paper 290.2)",
        total_atoms as f64 / wl.len() as f64,
        total_ucq as f64 / wl.len() as f64
    );
    println!();

    println!("== root covers ==");
    println!("{:<6} {:>10} {:>16}", "query", "fragments", "largest_frag");
    for q in &wl {
        let analysis = QueryAnalysis::new(&q.cq, &dataset.deps);
        let croot = root_cover(&analysis);
        let largest = croot
            .fragments()
            .iter()
            .map(|f| f.f.count_ones())
            .max()
            .unwrap_or(0);
        println!(
            "{:<6} {:>10} {:>16}",
            q.name,
            croot.num_fragments(),
            largest
        );
    }
}
