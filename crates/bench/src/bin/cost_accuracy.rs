//! Cost-model accuracy: estimated cost vs measured work for the candidate
//! reformulations GDL actually compares (§6.5: "our cost estimation helped
//! w.r.t. Postgres' explain; … DB2's estimation more accurate overall").
//!
//! For each query we take the strategies' chosen reformulations and rank
//! them twice — by estimated cost (both estimators) and by measured work
//! units — and report rank agreement.

use obda_bench::{choose, Dataset, EstimatorKind, Scale};
use obda_core::Strategy;
use obda_query::FolQuery;
use obda_rdbms::{EngineProfile, LayoutKind};

fn main() {
    std::env::set_var(
        "OBDA_SCALE_SMALL",
        std::env::var("OBDA_SCALE_SMALL").unwrap_or_else(|_| "40000".into()),
    );
    let dataset = Dataset::build(Scale::Small);
    let engine = dataset.engine(LayoutKind::Simple, EngineProfile::pg_like());
    let ext = engine.ext_cost_model();

    println!(
        "# cost-model accuracy (pg-like, simple layout, {} facts)",
        dataset.facts
    );
    println!(
        "{:<6} {:<10} {:>14} {:>14} {:>14}",
        "query", "variant", "ext_est", "rdbms_est", "measured_wu"
    );
    let mut ext_agree = 0usize;
    let mut rdbms_agree = 0usize;
    let mut comparisons = 0usize;
    for q in dataset.workload() {
        // Candidate reformulations: the strategy endpoints.
        let variants: Vec<(&str, FolQuery)> = vec![
            (
                "ucq",
                choose(&dataset, &engine, &q.cq, &Strategy::Ucq, EstimatorKind::Ext).fol,
            ),
            (
                "croot",
                choose(
                    &dataset,
                    &engine,
                    &q.cq,
                    &Strategy::CrootJucq,
                    EstimatorKind::Ext,
                )
                .fol,
            ),
            (
                "gdl",
                choose(
                    &dataset,
                    &engine,
                    &q.cq,
                    &Strategy::Gdl { time_budget: None },
                    EstimatorKind::Ext,
                )
                .fol,
            ),
        ];
        let mut rows: Vec<(&str, f64, f64, f64)> = Vec::new();
        for (name, fol) in &variants {
            let ext_est = ext.estimate_fol(fol);
            let rdbms_est = engine.explain(fol);
            let measured = engine
                .evaluate(fol)
                .map(|o| o.metrics.work_units())
                .unwrap_or(f64::INFINITY);
            println!(
                "{:<6} {:<10} {:>14.0} {:>14.0} {:>14.0}",
                q.name, name, ext_est, rdbms_est, measured
            );
            rows.push((name, ext_est, rdbms_est, measured));
        }
        // Pairwise rank agreement with the measured ordering.
        for i in 0..rows.len() {
            for j in (i + 1)..rows.len() {
                let truth = rows[i].3 < rows[j].3;
                comparisons += 1;
                if (rows[i].1 < rows[j].1) == truth {
                    ext_agree += 1;
                }
                if (rows[i].2 < rows[j].2) == truth {
                    rdbms_agree += 1;
                }
            }
        }
    }
    println!();
    println!(
        "rank agreement with measured work: ext {}/{}  rdbms {}/{}",
        ext_agree, comparisons, rdbms_agree, comparisons
    );
}
