//! §6.4: GDL running-time breakdown and the time-limited variant.
//!
//! Paper findings: GDL's own work (move generation, reformulation with
//! caching) is ≤24 ms; nearly all wall time goes to cost estimation; a
//! 20 ms-budget GDL finds covers whose evaluation times are close to the
//! full search's — "interesting covers are quickly found".

use std::time::Duration;

use obda_bench::{ms, Dataset, EstimatorKind, Scale};
use obda_core::Strategy;
use obda_rdbms::{EngineProfile, LayoutKind};

fn main() {
    let dataset = Dataset::build(Scale::Small);
    let engine = dataset.engine(LayoutKind::Simple, EngineProfile::pg_like());

    println!("# §6.4 — GDL running time (ext estimator)");
    println!(
        "{:<6} {:>10} {:>12} {:>10} {:>12} {:>12}",
        "query", "total_ms", "cost_est_ms", "est_calls", "covers", "moves"
    );
    for q in dataset.workload() {
        let chosen = obda_bench::choose(
            &dataset,
            &engine,
            &q.cq,
            &Strategy::Gdl { time_budget: None },
            EstimatorKind::Ext,
        );
        let s = chosen.search.expect("gdl ran");
        println!(
            "{:<6} {:>10} {:>12} {:>10} {:>12} {:>12}",
            q.name,
            ms(s.elapsed),
            ms(s.cost_estimation_time),
            s.cost_estimation_calls,
            s.explored_simple + s.explored_generalized,
            s.moves_applied,
        );
    }

    println!();
    println!("# time-limited GDL (20 ms budget) vs full GDL — evaluation of the chosen cover");
    println!(
        "{:<6} {:>14} {:>14} {:>10}",
        "query", "full_eval_ms", "lim_eval_ms", "ratio"
    );
    for q in dataset.workload() {
        let full = obda_bench::run_cell(
            &dataset,
            &engine,
            &q,
            &Strategy::Gdl { time_budget: None },
            EstimatorKind::Ext,
            "full",
        );
        let limited = obda_bench::run_cell(
            &dataset,
            &engine,
            &q,
            &Strategy::Gdl {
                time_budget: Some(Duration::from_millis(20)),
            },
            EstimatorKind::Ext,
            "20ms",
        );
        let (Some(fw), Some(lw)) = (full.wall, limited.wall) else {
            continue;
        };
        println!(
            "{:<6} {:>14} {:>14} {:>9.2}x",
            q.name,
            ms(fw),
            ms(lw),
            lw.as_secs_f64() / fw.as_secs_f64().max(1e-9)
        );
    }
}
