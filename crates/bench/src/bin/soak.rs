//! The socket soak harness: sustained QPS through the wire front end.
//!
//! Where `qps` measures the serving layer in-process (no sockets), this
//! binary drives the full stack — TCP, protocol framing, per-statement
//! snapshot pinning — with N concurrent [`WireClient`] sessions
//! replaying a mixed statement stream for a fixed duration, while a
//! writer thread applies periodic reloads so sessions cross generation
//! boundaries mid-soak. Reported: sustained QPS plus p50/p99 per-query
//! latency, merged into `BENCH_qps.json` under the `"soak"` section,
//! plus an observability section (`"soak_observe"`) read back from the
//! server's metrics registry after the run.
//!
//! The soak also embeds a live [`MetricsEndpoint`] on an ephemeral port
//! and scrapes it over HTTP twice — mid-soak and after the load stops —
//! so the Prometheus exposition path is exercised under real concurrent
//! traffic, not just in unit tests.
//!
//! `--check` enforces only *correctness* bars (every query answered, no
//! protocol errors, reloads visible, every required metric family
//! served, counters monotone between the two scrapes); throughput bars
//! would be meaningless on the single-CPU CI container — the
//! thread-scaling rule from ROADMAP applies, so the only perf output is
//! informational.
//!
//! Environment: `OBDA_SOAK_FACTS` (default 8000), `OBDA_SOAK_SECONDS`
//! (default 5), `OBDA_SOAK_SESSIONS` (default 4), `OBDA_SOAK_WRITER`
//! (default `reload`; `txn` replaces the in-process reload writer with
//! a wire session committing `BEGIN` / `INSERT` / `COMMIT` blocks, so
//! generation churn comes from the MVCC transaction path instead).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use obda_bench::{benchjson, ms, percentile};
use obda_core::Strategy;
use obda_lubm::{generate, GenConfig, UnivOntology};
use obda_rdbms::pgwire::{PgConfig, PgListener, WireClient};
use obda_rdbms::{Backend, MetricsEndpoint, Server, ServerConfig};

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Metric families the exposition endpoint must serve (CI's smoke bar).
const REQUIRED_FAMILIES: &[&str] = &[
    "obda_queries_total",
    "obda_query_latency_seconds_bucket",
    "obda_stage_seconds_total",
    "obda_plan_cache_hits_total",
    "obda_txn_commits_total",
    "obda_wal_appends_total",
    "obda_connections_admitted_total",
    "obda_cost_predicted_units_total",
    "obda_generation",
];

/// One HTTP scrape of `GET /metrics`; returns the response body.
fn scrape_metrics(addr: &std::net::SocketAddr) -> Result<String, String> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: soak\r\nConnection: close\r\n\r\n")
        .map_err(|e| e.to_string())?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| e.to_string())?;
    if !response.starts_with("HTTP/1.1 200") {
        return Err(format!(
            "unexpected status line: {:?}",
            response.lines().next().unwrap_or("")
        ));
    }
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err("no header/body separator in response".into()),
    }
}

/// Sum every sample of `family` (all label sets) in an exposition body.
fn family_sum(body: &str, family: &str) -> f64 {
    body.lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| {
            let (name, value) = l.rsplit_once(' ')?;
            let bare = name.split('{').next().unwrap_or(name);
            (bare == family).then(|| value.parse::<f64>().ok())?
        })
        .sum()
}

/// The statement mix one session replays, cycling. Cheap shapes only —
/// the soak measures the serving path, not GDL compile time.
const STATEMENTS: &[&str] = &[
    "SELECT ?x WHERE GraduateStudent(?x)",
    "SELECT ?x, ?y WHERE Professor(?x), advisor(?y, ?x)",
    "ASK WHERE Student(?x)",
    "SHOW generation",
    "SELECT ?x WHERE Student(?x), takesCourse(?x, ?y)",
];

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let facts = env_usize("OBDA_SOAK_FACTS", 8_000);
    let seconds = env_usize("OBDA_SOAK_SECONDS", 5);
    let sessions = env_usize("OBDA_SOAK_SESSIONS", 4);
    let writer_mode = std::env::var("OBDA_SOAK_WRITER").unwrap_or_else(|_| "reload".into());

    let mut onto = UnivOntology::build();
    let (abox, report) = generate(
        &mut onto,
        &GenConfig {
            target_facts: facts,
            ..Default::default()
        },
    );
    let server = Arc::new(Server::new(
        onto.voc.clone(),
        onto.tbox.clone(),
        &abox,
        ServerConfig {
            reform_strategy: Strategy::Gdl { time_budget: None },
            ..ServerConfig::default()
        },
    ));
    let mut listener = PgListener::bind(
        "127.0.0.1:0",
        server.clone(),
        PgConfig {
            max_connections: sessions + 2,
            default_backend: Backend::Native,
            allow_chaos: false,
        },
    )
    .expect("bind ephemeral port");
    let addr = listener.local_addr();
    let mut metrics_endpoint =
        MetricsEndpoint::bind("127.0.0.1:0", server.clone()).expect("bind metrics endpoint");
    let metrics_addr = metrics_endpoint.local_addr();
    println!(
        "soak: {} facts, {sessions} sessions x {seconds}s against {addr} \
         (metrics on http://{metrics_addr}/metrics)",
        report.facts
    );

    let stop = Arc::new(AtomicBool::new(false));
    let errors = Arc::new(AtomicU64::new(0));
    let answered = Arc::new(AtomicU64::new(0));

    // Writer: keep sessions crossing generation boundaries (snapshot
    // pinning under churn). Two modes: `reload` republishes the same
    // ABox in-process every 500ms; `txn` drives BEGIN / INSERT / COMMIT
    // blocks through its own wire session, so churn comes from the MVCC
    // group-commit path and exercises the transaction protocol end to
    // end while readers soak.
    let writer_stop = stop.clone();
    let writer_errors = errors.clone();
    let writer_server = server.clone();
    let writer_abox = abox;
    let writer_txn = writer_mode == "txn";
    let writer = std::thread::spawn(move || {
        let mut writes = 0u64;
        if writer_txn {
            let mut client = match WireClient::connect(&addr, &[("backend", "native")]) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("writer: connect failed: {e}");
                    writer_errors.fetch_add(1, Ordering::Relaxed);
                    return writes;
                }
            };
            let mut n = 0u64;
            while !writer_stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(250));
                n += 1;
                let block = [
                    "BEGIN".to_string(),
                    format!("INSERT GraduateStudent(soak_txn_{n}), Student(soak_txn_{n})"),
                    "COMMIT".to_string(),
                ];
                let mut committed = true;
                for stmt in &block {
                    if let Err(e) = client.simple_query(stmt) {
                        eprintln!("writer: {stmt:?} failed: {e}");
                        writer_errors.fetch_add(1, Ordering::Relaxed);
                        committed = false;
                        let _ = client.simple_query("ROLLBACK");
                        break;
                    }
                }
                if committed {
                    writes += 1;
                }
            }
            client.terminate();
        } else {
            while !writer_stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(500));
                if writer_server.reload_abox(&writer_abox).is_ok() {
                    writes += 1;
                }
            }
        }
        writes
    });

    let mut handles = Vec::new();
    for s in 0..sessions {
        let stop = stop.clone();
        let errors = errors.clone();
        let answered = answered.clone();
        // Alternate backends across sessions: both execution paths soak.
        let backend = if s % 2 == 0 { "native" } else { "sql" };
        handles.push(std::thread::spawn(move || -> Vec<Duration> {
            let mut latencies = Vec::new();
            let mut client = match WireClient::connect(&addr, &[("backend", backend)]) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("session {s}: connect failed: {e}");
                    errors.fetch_add(1, Ordering::Relaxed);
                    return latencies;
                }
            };
            let mut k = s; // stagger the starting statement
            while !stop.load(Ordering::Relaxed) {
                let stmt = STATEMENTS[k % STATEMENTS.len()];
                k += 1;
                let t0 = Instant::now();
                match client.simple_query(stmt) {
                    Ok(results) => {
                        latencies.push(t0.elapsed());
                        answered.fetch_add(results.len() as u64, Ordering::Relaxed);
                    }
                    Err(e) => {
                        eprintln!("session {s}: {stmt:?} failed: {e}");
                        errors.fetch_add(1, Ordering::Relaxed);
                        return latencies;
                    }
                }
            }
            client.terminate();
            latencies
        }));
    }

    let started = Instant::now();
    // Scrape the live exposition endpoint mid-soak and again after load
    // stops: the pair proves the endpoint serves under traffic and that
    // the counters it reports are monotone.
    let half = Duration::from_millis((seconds as u64 * 1000) / 2);
    std::thread::sleep(half);
    let scrape_mid = scrape_metrics(&metrics_addr);
    std::thread::sleep(Duration::from_secs(seconds as u64).saturating_sub(half));
    stop.store(true, Ordering::SeqCst);
    let mut latencies: Vec<Duration> = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("session thread joins"));
    }
    let elapsed = started.elapsed();
    let writes = writer.join().expect("writer thread joins");
    let scrape_end = scrape_metrics(&metrics_addr);
    listener.shutdown();
    metrics_endpoint.shutdown();

    let total = latencies.len() as f64;
    let qps = total / elapsed.as_secs_f64();
    let p50 = percentile(&latencies, 50.0);
    let p99 = percentile(&latencies, 99.0);
    let errs = errors.load(Ordering::Relaxed);
    let write_label = if writer_txn { "txn commits" } else { "reloads" };
    println!(
        "soak: {total} queries in {:.1}s = {qps:.1} q/s (p50 {} ms, p99 {} ms), \
         {writes} {write_label}, {errs} errors",
        elapsed.as_secs_f64(),
        ms(p50),
        ms(p99),
    );

    let path = benchjson::default_path();
    let section = benchjson::JsonObj::new()
        .int("sessions", sessions as u64)
        .int("seconds", seconds as u64)
        .int("queries", latencies.len() as u64)
        .num("qps", qps)
        .num("p50_ms", p50.as_secs_f64() * 1e3)
        .num("p99_ms", p99.as_secs_f64() * 1e3)
        .str("writer_mode", &writer_mode)
        .int("reloads", writes)
        .int("errors", errs);
    if let Err(e) = benchjson::merge_section(&path, "soak", &section) {
        eprintln!("cannot write {}: {e}", path.display());
    } else {
        println!("wrote {} [soak]", path.display());
    }

    // Observability readback: what the server itself counted during the
    // soak, straight from the registry (not the scrape text).
    let observe = server.observe();
    let txn = server.txn_stats();
    println!(
        "observe: txn_commits={} txn_conflicts={} admitted={} rejected={} \
         panics_recovered={} wal_appends={}",
        txn.committed,
        txn.conflicts,
        observe.connections_admitted_total(),
        observe.connections_rejected_total(),
        observe.panics_recovered_total(),
        observe.wal_appends_total(),
    );
    let observe_section = benchjson::JsonObj::new()
        .int("txn_commits", txn.committed)
        .int("txn_conflicts", txn.conflicts)
        .int("admission_admitted", observe.connections_admitted_total())
        .int("admission_rejected", observe.connections_rejected_total())
        .int("panics_recovered", observe.panics_recovered_total())
        .int("wal_appends", observe.wal_appends_total());
    if let Err(e) = benchjson::merge_section(&path, "soak_observe", &observe_section) {
        eprintln!("cannot write {}: {e}", path.display());
    } else {
        println!("wrote {} [soak_observe]", path.display());
    }

    if check {
        let mut failed = false;
        if errs > 0 {
            eprintln!("FAIL: {errs} session errors during soak");
            failed = true;
        }
        if latencies.is_empty() {
            eprintln!("FAIL: no queries completed");
            failed = true;
        }
        if writes == 0 {
            eprintln!("FAIL: writer published no {write_label} — generation churn untested");
            failed = true;
        }
        match (&scrape_mid, &scrape_end) {
            (Ok(mid), Ok(end)) => {
                for family in REQUIRED_FAMILIES {
                    if !end.contains(&format!("# TYPE {family} "))
                        && !end.contains(&format!("{family} "))
                        && !end.contains(&format!("{family}{{"))
                    {
                        eprintln!("FAIL: metric family {family} missing from /metrics");
                        failed = true;
                    }
                }
                let (mid_q, end_q) = (
                    family_sum(mid, "obda_queries_total"),
                    family_sum(end, "obda_queries_total"),
                );
                if mid_q <= 0.0 {
                    eprintln!("FAIL: mid-soak scrape shows no served queries");
                    failed = true;
                }
                if end_q < mid_q {
                    eprintln!("FAIL: obda_queries_total not monotone ({mid_q} -> {end_q})");
                    failed = true;
                }
                println!("scrape: obda_queries_total {mid_q} mid-soak -> {end_q} final");
            }
            (mid, end) => {
                if let Err(e) = mid {
                    eprintln!("FAIL: mid-soak metrics scrape: {e}");
                }
                if let Err(e) = end {
                    eprintln!("FAIL: final metrics scrape: {e}");
                }
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "CHECK PASSED: sustained load with {write_label} churn, zero errors, \
             metrics scraped live"
        );
    }
}
