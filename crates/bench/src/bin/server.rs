//! The standalone wire server: load or generate a KB, bind a PostgreSQL
//! wire-protocol listener over the serving layer, and run until told to
//! stop.
//!
//! ```text
//! server [--addr 127.0.0.1:5433] [--facts 20000 | --kb FILE]
//!        [--layout simple|triple|dph] [--backend native|sql]
//!        [--threads N] [--max-connections N]
//!        [--metrics-addr HOST:PORT] [--slow-query-ms N]
//!        [--chaos] [--check]
//! ```
//!
//! Data comes from either `--kb FILE` (the text KB format `KnowledgeBase
//! ::parse` reads) or a generated LUBM∃ ABox of `--facts` facts. The
//! process then serves until stdin reads `shutdown` (or closes), or —
//! with `--check` — runs a self-smoke instead: it connects to its own
//! socket with the bundled [`WireClient`], runs three queries under both
//! backends, shuts down gracefully, and exits non-zero on any mismatch.
//! CI's server-smoke job is exactly `server --check`.
//!
//! `--metrics-addr` binds a Prometheus text endpoint (`GET /metrics`)
//! alongside the wire listener; `--slow-query-ms N` logs any statement
//! slower than N ms to stderr as a structured `slow_query` line.

use std::io::BufRead;
use std::sync::Arc;

use obda_core::Strategy;
use obda_dllite::KnowledgeBase;
use obda_lubm::{generate, GenConfig, UnivOntology};
use obda_rdbms::pgwire::{PgConfig, PgListener, WireClient};
use obda_rdbms::{Backend, LayoutKind, MetricsEndpoint, Server, ServerConfig};

struct Args {
    addr: String,
    facts: usize,
    kb: Option<String>,
    layout: LayoutKind,
    backend: Backend,
    threads: usize,
    max_connections: usize,
    metrics_addr: Option<String>,
    slow_query_ms: Option<u64>,
    chaos: bool,
    check: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: server [--addr HOST:PORT] [--facts N | --kb FILE] \
         [--layout simple|triple|dph] [--backend native|sql] \
         [--threads N] [--max-connections N] \
         [--metrics-addr HOST:PORT] [--slow-query-ms N] [--chaos] [--check]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:5433".into(),
        facts: 20_000,
        kb: None,
        layout: LayoutKind::Simple,
        backend: Backend::Native,
        threads: 1,
        max_connections: 64,
        metrics_addr: None,
        slow_query_ms: None,
        chaos: false,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--facts" => {
                args.facts = value("--facts").parse().unwrap_or_else(|_| usage());
            }
            "--kb" => args.kb = Some(value("--kb")),
            "--layout" => {
                args.layout = match value("--layout").as_str() {
                    "simple" => LayoutKind::Simple,
                    "triple" => LayoutKind::Triple,
                    "dph" => LayoutKind::Dph,
                    _ => usage(),
                }
            }
            "--backend" => {
                args.backend = match value("--backend").as_str() {
                    "native" => Backend::Native,
                    "sql" => Backend::Sql,
                    _ => usage(),
                }
            }
            "--threads" => {
                args.threads = value("--threads").parse().unwrap_or_else(|_| usage());
            }
            "--max-connections" => {
                args.max_connections = value("--max-connections")
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            "--metrics-addr" => args.metrics_addr = Some(value("--metrics-addr")),
            "--slow-query-ms" => {
                args.slow_query_ms =
                    Some(value("--slow-query-ms").parse().unwrap_or_else(|_| usage()));
            }
            "--chaos" => args.chaos = true,
            "--check" => args.check = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    args
}

fn build_server(args: &Args) -> Server {
    let config = ServerConfig {
        layout: args.layout,
        backend: args.backend,
        reform_strategy: Strategy::Gdl { time_budget: None },
        threads: args.threads,
        ..ServerConfig::default()
    };
    match &args.kb {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            let kb = KnowledgeBase::parse(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse {path}: {e}");
                std::process::exit(1);
            });
            println!(
                "kb: {path} ({} individuals, {} assertions)",
                kb.voc().num_individuals(),
                kb.abox().len()
            );
            Server::new(kb.voc().clone(), kb.tbox().clone(), kb.abox(), config)
        }
        None => {
            let mut onto = UnivOntology::build();
            let (abox, report) = generate(
                &mut onto,
                &GenConfig {
                    target_facts: args.facts,
                    ..Default::default()
                },
            );
            println!("kb: generated LUBM ({} facts)", report.facts);
            Server::new(onto.voc, onto.tbox, &abox, config)
        }
    }
}

fn main() {
    let args = parse_args();
    let server = Arc::new(build_server(&args));
    if let Some(ms) = args.slow_query_ms {
        server
            .observe()
            .set_slow_log_threshold(Some(std::time::Duration::from_millis(ms)));
    }
    let mut metrics = args.metrics_addr.as_deref().map(|addr| {
        let ep = MetricsEndpoint::bind(addr, server.clone()).unwrap_or_else(|e| {
            eprintln!("cannot bind metrics endpoint {addr}: {e}");
            std::process::exit(1);
        });
        println!("metrics on http://{}/metrics", ep.local_addr());
        ep
    });
    let pg = PgConfig {
        max_connections: args.max_connections,
        default_backend: args.backend,
        // --check exercises the panic-containment path.
        allow_chaos: args.chaos || args.check,
    };
    let mut listener = PgListener::bind(&args.addr, server, pg).unwrap_or_else(|e| {
        eprintln!("cannot bind {}: {e}", args.addr);
        std::process::exit(1);
    });
    let addr = listener.local_addr();
    println!(
        "listening on {addr} (backend={}, max_connections={})",
        args.backend.name(),
        args.max_connections
    );

    if args.check {
        let failed = self_smoke(&addr);
        println!("shutting down");
        listener.shutdown();
        if let Some(ep) = metrics.as_mut() {
            ep.shutdown();
        }
        if failed {
            std::process::exit(1);
        }
        println!("CHECK PASSED: both backends answered over the socket");
        return;
    }

    println!("type 'shutdown' (or close stdin) to stop");
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "shutdown" => break,
            Ok(_) => println!("commands: shutdown"),
            Err(_) => break,
        }
    }
    println!("draining sessions…");
    listener.shutdown();
    if let Some(ep) = metrics.as_mut() {
        ep.shutdown();
    }
    println!("bye");
}

/// Connect to our own socket and run the smoke sequence under both
/// backends; returns whether anything failed.
fn self_smoke(addr: &std::net::SocketAddr) -> bool {
    let mut failed = false;
    let mut native_rows = None;
    for backend in ["native", "sql"] {
        match smoke_one(addr, backend) {
            Ok(rows) => {
                println!("smoke [{backend}]: GraduateStudent query answered {rows} rows");
                match native_rows {
                    None => native_rows = Some(rows),
                    Some(expected) if expected != rows => {
                        eprintln!("FAIL: backends disagree ({expected} native vs {rows} sql rows)");
                        failed = true;
                    }
                    Some(_) => {}
                }
            }
            Err(e) => {
                eprintln!("FAIL [{backend}]: {e}");
                failed = true;
            }
        }
    }
    failed
}

fn smoke_one(addr: &std::net::SocketAddr, backend: &str) -> Result<usize, String> {
    let mut client =
        WireClient::connect(addr, &[("backend", backend)]).map_err(|e| e.to_string())?;

    // 1. A SHOW round-trip proves startup + simple protocol.
    let show = client
        .simple_query("SHOW backend")
        .map_err(|e| e.to_string())?;
    let got = show
        .first()
        .and_then(|r| r.rows.first())
        .and_then(|r| r.first())
        .cloned()
        .unwrap_or_default();
    if got != backend {
        return Err(format!("SHOW backend answered {got:?}, wanted {backend:?}"));
    }

    // 2. A real query with ontology reasoning: GraduateStudent holds via
    //    the TBox for every GraduateCourse-taker.
    let rows = client
        .simple_query("SELECT ?x WHERE GraduateStudent(?x)")
        .map_err(|e| e.to_string())?;
    let n = rows.first().map(|r| r.rows.len()).unwrap_or(0);
    if n == 0 {
        return Err("GraduateStudent query returned no rows".into());
    }

    // 3. The extended protocol answers the same query identically.
    let ext = client
        .extended_query("SELECT ?x WHERE GraduateStudent(?x)")
        .map_err(|e| e.to_string())?;
    if ext.rows.len() != n {
        return Err(format!(
            "extended protocol answered {} rows, simple answered {n}",
            ext.rows.len()
        ));
    }
    client.terminate();
    Ok(n)
}
