//! The ingest benchmark: incremental `apply_batch` vs. full
//! `reload_abox` on LUBM.
//!
//! Scenario: a durable server starts with 90% of a generated LUBM
//! dataset and ingests the rest as ten 1%-sized [`AboxDelta`] batches —
//! the steady-state serving regime the incremental path exists for.
//! Reported numbers:
//!
//! * **apply_batch latency** — per-batch, averaged over the ten batches:
//!   WAL append + in-place maintenance of the layout tables, indexes and
//!   statistics on a copy-on-write engine clone (O(|tables| memcpy +
//!   |δ|));
//! * **ingest throughput** — facts/second over the same ten batches
//!   (each publishes one snapshot generation);
//! * **reload_abox latency** — the bulk alternative on the same server:
//!   storage and statistics rebuilt from scratch, plus the on-disk
//!   compaction a durable bulk load performs.
//!
//! `--check` exits non-zero unless the average incremental apply beats
//! the full reload by ≥ 5× — the acceptance bar CI's recovery job
//! enforces.
//!
//! Environment: `OBDA_INGEST_FACTS` (default 20 000) scales the dataset;
//! `OBDA_INGEST_ROUNDS` (default 3) repeats the whole measurement and
//! keeps the best round (noise floor on shared runners).

use std::time::{Duration, Instant};

use obda_bench::benchjson;
use obda_dllite::{ABox, AboxDelta};
use obda_lubm::{generate, GenConfig, UnivOntology};
use obda_rdbms::{Server, ServerConfig};

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Split `full` into a base ABox holding the first `pct`% of each fact
/// vector and ten equal delta batches covering the rest.
fn split(full: &ABox, pct: usize) -> (ABox, Vec<AboxDelta>) {
    let concepts = full.concept_assertions();
    let roles = full.role_assertions();
    let cc = concepts.len() * pct / 100;
    let rc = roles.len() * pct / 100;
    let mut base = ABox::new();
    for &(c, i) in &concepts[..cc] {
        base.assert_concept(c, i);
    }
    for &(r, a, b) in &roles[..rc] {
        base.assert_role(r, a, b);
    }
    let ctail = &concepts[cc..];
    let rtail = &roles[rc..];
    let batches = (0..10)
        .map(|k| AboxDelta {
            insert_concepts: ctail[ctail.len() * k / 10..ctail.len() * (k + 1) / 10].to_vec(),
            insert_roles: rtail[rtail.len() * k / 10..rtail.len() * (k + 1) / 10].to_vec(),
            ..AboxDelta::new()
        })
        .collect();
    (base, batches)
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let facts = env_usize("OBDA_INGEST_FACTS", 20_000);
    let rounds = env_usize("OBDA_INGEST_ROUNDS", 3);

    let mut onto = UnivOntology::build();
    let (full, report) = generate(
        &mut onto,
        &GenConfig {
            target_facts: facts,
            ..Default::default()
        },
    );
    let (base, batches) = split(&full, 90);
    let batch_facts: usize = batches.iter().map(AboxDelta::len).sum::<usize>() / batches.len();
    println!(
        "dataset: {} facts, 10 ingest batches of ~{batch_facts} facts (~1%) each, {} round(s)",
        report.facts, rounds
    );

    let dir = std::env::temp_dir().join(format!("obda-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut best_apply = Duration::MAX;
    let mut best_reload = Duration::MAX;
    for round in 0..rounds {
        let srv = Server::create_durable(
            &dir.join(format!("r{round}")),
            onto.voc.clone(),
            onto.tbox.clone(),
            &base,
            ServerConfig {
                compact_every: 0, // measure the append path, not compaction
                ..ServerConfig::default()
            },
        )
        .expect("store dir is writable");
        // Warm-up: the first clone after a bulk load pays allocator
        // warm-up that steady-state batches never see.
        srv.apply_batch(&AboxDelta::new()).expect("warm-up");

        let start = Instant::now();
        for batch in &batches {
            srv.apply_batch(batch).expect("append + apply");
        }
        let apply = start.elapsed() / batches.len() as u32;

        let start = Instant::now();
        srv.reload_abox(&full).expect("reload commits");
        let reload = start.elapsed();

        best_apply = best_apply.min(apply);
        best_reload = best_reload.min(reload);
    }
    let apply_ms = best_apply.as_secs_f64() * 1e3;
    let reload_ms = best_reload.as_secs_f64() * 1e3;
    let speedup = reload_ms / apply_ms;
    println!("apply_batch (1% delta) : {apply_ms:>9.3} ms/batch");
    println!(
        "ingest throughput      : {:>9.0} facts/s",
        batch_facts as f64 / best_apply.as_secs_f64()
    );
    println!("reload_abox (full)     : {reload_ms:>9.3} ms   ({speedup:.1}x slower)");

    let _ = std::fs::remove_dir_all(&dir);

    let path = benchjson::default_path();
    let section = benchjson::JsonObj::new()
        .int("facts", report.facts as u64)
        .num("apply_batch_ms", apply_ms)
        .num(
            "ingest_facts_per_s",
            batch_facts as f64 / best_apply.as_secs_f64(),
        )
        .num("reload_ms", reload_ms)
        .num("apply_vs_reload_speedup", speedup);
    if let Err(e) = benchjson::merge_section(&path, "ingest", &section) {
        eprintln!("cannot write {}: {e}", path.display());
    } else {
        println!("wrote {} [ingest]", path.display());
    }

    if check {
        if speedup < 5.0 {
            eprintln!("FAIL: incremental apply speedup {speedup:.1}x < 5x over full reload");
            std::process::exit(1);
        }
        println!("CHECK PASSED: apply_batch >= 5x faster than reload_abox ({speedup:.1}x)");
    }
}
