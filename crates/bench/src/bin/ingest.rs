//! The ingest benchmark: incremental `apply_batch` vs. full
//! `reload_abox` on LUBM.
//!
//! Scenario: a durable server starts with 90% of a generated LUBM
//! dataset and ingests the rest as ten 1%-sized [`AboxDelta`] batches —
//! the steady-state serving regime the incremental path exists for.
//! Reported numbers:
//!
//! * **apply_batch latency** — per-batch, averaged over the ten batches:
//!   WAL append + in-place maintenance of the layout tables, indexes and
//!   statistics on a copy-on-write engine clone (O(|tables| memcpy +
//!   |δ|));
//! * **ingest throughput** — facts/second over the same ten batches
//!   (each publishes one snapshot generation);
//! * **reload_abox latency** — the bulk alternative on the same server:
//!   storage and statistics rebuilt from scratch, plus the on-disk
//!   compaction a durable bulk load performs.
//!
//! A second section, `--writers N` (or `OBDA_INGEST_WRITERS`), measures
//! the MVCC commit path: the same ingest tail re-sliced into per-writer
//! transactions, committed by N concurrent threads through [`Server::begin`]
//! (overlapping commits share group-commit WAL records) and compared
//! against the same chunks applied serially through the one-shot
//! `apply_batch` path. Both numbers merge into `BENCH_qps.json` under
//! `"ingest_writers"`.
//!
//! `--check` exits non-zero unless the average incremental apply beats
//! the full reload by ≥ 5× — the acceptance bar CI's recovery job
//! enforces. For the writers section `--check` is correctness-only
//! (identical final engine state, every commit counted, zero
//! conflicts); per the ROADMAP thread-scaling rule, throughput bars are
//! gated on `available_parallelism` and even then only a loose sanity
//! floor, never a scaling claim.
//!
//! Environment: `OBDA_INGEST_FACTS` (default 20 000) scales the dataset;
//! `OBDA_INGEST_ROUNDS` (default 3) repeats the whole measurement and
//! keeps the best round (noise floor on shared runners);
//! `OBDA_INGEST_WRITERS` (default 4) sets the concurrent writer count.

use std::sync::Barrier;
use std::time::{Duration, Instant};

use obda_bench::benchjson;
use obda_dllite::{ABox, AboxDelta};
use obda_lubm::{generate, GenConfig, UnivOntology};
use obda_rdbms::{Server, ServerConfig};

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `--writers N` / `--writers=N` from the command line, falling back to
/// `OBDA_INGEST_WRITERS`, falling back to `default`. Clamped to ≥ 1.
fn writers_arg(default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    let mut writers = None;
    for (k, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--writers=") {
            writers = v.parse().ok();
        } else if a == "--writers" {
            writers = args.get(k + 1).and_then(|v| v.parse().ok());
        }
    }
    writers
        .unwrap_or_else(|| env_usize("OBDA_INGEST_WRITERS", default))
        .max(1)
}

/// Split `full` into a base ABox holding the first `pct`% of each fact
/// vector and ten equal delta batches covering the rest.
fn split(full: &ABox, pct: usize) -> (ABox, Vec<AboxDelta>) {
    let concepts = full.concept_assertions();
    let roles = full.role_assertions();
    let cc = concepts.len() * pct / 100;
    let rc = roles.len() * pct / 100;
    let mut base = ABox::new();
    for &(c, i) in &concepts[..cc] {
        base.assert_concept(c, i);
    }
    for &(r, a, b) in &roles[..rc] {
        base.assert_role(r, a, b);
    }
    let ctail = &concepts[cc..];
    let rtail = &roles[rc..];
    let batches = (0..10)
        .map(|k| AboxDelta {
            insert_concepts: ctail[ctail.len() * k / 10..ctail.len() * (k + 1) / 10].to_vec(),
            insert_roles: rtail[rtail.len() * k / 10..rtail.len() * (k + 1) / 10].to_vec(),
            ..AboxDelta::new()
        })
        .collect();
    (base, batches)
}

/// Re-slice the ingest tail into `n` equal transaction-sized deltas.
/// The facts are the same as `batches`; only the chunk boundaries move,
/// so a serial replay and a per-writer partition carry identical data.
fn rechunk(batches: &[AboxDelta], n: usize) -> Vec<AboxDelta> {
    let concepts: Vec<_> = batches
        .iter()
        .flat_map(|b| b.insert_concepts.iter().copied())
        .collect();
    let roles: Vec<_> = batches
        .iter()
        .flat_map(|b| b.insert_roles.iter().copied())
        .collect();
    (0..n)
        .map(|k| AboxDelta {
            insert_concepts: concepts[concepts.len() * k / n..concepts.len() * (k + 1) / n]
                .to_vec(),
            insert_roles: roles[roles.len() * k / n..roles.len() * (k + 1) / n].to_vec(),
            ..AboxDelta::new()
        })
        .collect()
}

/// The concurrent-commit section: `writers` threads each commit their
/// share of the ingest tail as snapshot-isolated transactions (so
/// overlapping commits can share group-commit WAL records), measured
/// against the same chunks applied serially through the one-shot
/// `apply_batch` path on a second server. The partition is disjoint, so
/// first-committer-wins validation must pass every commit.
///
/// Returns the `"ingest_writers"` JSON section and a correctness
/// verdict; violations print `WRITERS FAIL` lines as they are found.
fn concurrent_commits(
    dir: &std::path::Path,
    onto: &UnivOntology,
    base: &ABox,
    batches: &[AboxDelta],
    writers: usize,
) -> (benchjson::JsonObj, bool) {
    const TXNS_PER_WRITER: usize = 4;
    let chunks = rechunk(batches, writers * TXNS_PER_WRITER);
    let total_facts: usize = chunks.iter().map(AboxDelta::len).sum();
    // Tiny datasets can leave a chunk empty; empty commits are no-ops
    // that never reach the WAL, so count only the chunks that publish.
    let txns = chunks.iter().filter(|c| c.len() > 0).count() as u64;
    let config = || ServerConfig {
        compact_every: 0, // measure the append path, not compaction
        ..ServerConfig::default()
    };

    // Serial baseline: the pre-MVCC single-writer path, one one-shot
    // transaction per chunk.
    let serial = Server::create_durable(
        &dir.join("serial"),
        onto.voc.clone(),
        onto.tbox.clone(),
        base,
        config(),
    )
    .expect("store dir is writable");
    let start = Instant::now();
    for chunk in chunks.iter().filter(|c| c.len() > 0) {
        serial.apply_batch(chunk).expect("serial apply");
    }
    let serial_elapsed = start.elapsed();

    // Concurrent: each writer owns a contiguous run of chunks and
    // commits them through the transaction API; a barrier lines the
    // writers up so their commits actually overlap.
    let conc = Server::create_durable(
        &dir.join("writers"),
        onto.voc.clone(),
        onto.tbox.clone(),
        base,
        config(),
    )
    .expect("store dir is writable");
    let barrier = Barrier::new(writers);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..writers {
            let conc = &conc;
            let barrier = &barrier;
            let mine = &chunks[w * TXNS_PER_WRITER..(w + 1) * TXNS_PER_WRITER];
            scope.spawn(move || {
                barrier.wait();
                for chunk in mine.iter().filter(|c| c.len() > 0) {
                    let mut txn = conc.begin();
                    for &(c, a) in &chunk.insert_concepts {
                        txn.insert_concept(c, a);
                    }
                    for &(r, a, b) in &chunk.insert_roles {
                        txn.insert_role(r, a, b);
                    }
                    txn.commit().expect("disjoint writers cannot conflict");
                }
            });
        }
    });
    let conc_elapsed = start.elapsed();

    let stats = conc.txn_stats();
    let serial_fps = total_facts as f64 / serial_elapsed.as_secs_f64();
    let conc_fps = total_facts as f64 / conc_elapsed.as_secs_f64();
    println!(
        "writers section        : {writers} writers x {TXNS_PER_WRITER} txns, {total_facts} facts"
    );
    println!("serial apply_batch     : {serial_fps:>9.0} facts/s");
    println!(
        "concurrent commits     : {conc_fps:>9.0} facts/s   ({} WAL group(s) for {} txns)",
        stats.commit_groups, stats.committed
    );

    let mut ok = true;
    let serial_snap = serial.snapshot();
    let conc_snap = conc.snapshot();
    if serial_snap.engine().stats() != conc_snap.engine().stats() {
        eprintln!("WRITERS FAIL: concurrent engine state diverged from serial apply");
        ok = false;
    }
    if stats.committed != txns || stats.conflicts != 0 || stats.active != 0 {
        eprintln!("WRITERS FAIL: expected {txns} commits, 0 conflicts, 0 active; got {stats:?}");
        ok = false;
    }
    if serial.generation() != txns || conc.generation() != txns {
        eprintln!(
            "WRITERS FAIL: generations diverged (serial {}, concurrent {}, expected {txns})",
            serial.generation(),
            conc.generation()
        );
        ok = false;
    }
    // Thread-scaling claims need real cores (the ROADMAP rule); even
    // then this is a loose sanity floor on shared runners, not a
    // speedup bar.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 2 && conc_fps < serial_fps * 0.2 {
        eprintln!(
            "WRITERS FAIL: concurrent commit path fell below 0.2x of serial \
             ({conc_fps:.0} vs {serial_fps:.0} facts/s on {cores} cores)"
        );
        ok = false;
    }

    let section = benchjson::JsonObj::new()
        .int("writers", writers as u64)
        .int("txns", txns)
        .int("facts", total_facts as u64)
        .num("serial_facts_per_s", serial_fps)
        .num("concurrent_facts_per_s", conc_fps)
        .int("commit_groups", stats.commit_groups)
        .int("conflicts", stats.conflicts);
    (section, ok)
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let facts = env_usize("OBDA_INGEST_FACTS", 20_000);
    let rounds = env_usize("OBDA_INGEST_ROUNDS", 3);
    let writers = writers_arg(4);

    let mut onto = UnivOntology::build();
    let (full, report) = generate(
        &mut onto,
        &GenConfig {
            target_facts: facts,
            ..Default::default()
        },
    );
    let (base, batches) = split(&full, 90);
    let batch_facts: usize = batches.iter().map(AboxDelta::len).sum::<usize>() / batches.len();
    println!(
        "dataset: {} facts, 10 ingest batches of ~{batch_facts} facts (~1%) each, {} round(s)",
        report.facts, rounds
    );

    let dir = std::env::temp_dir().join(format!("obda-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut best_apply = Duration::MAX;
    let mut best_reload = Duration::MAX;
    for round in 0..rounds {
        let srv = Server::create_durable(
            &dir.join(format!("r{round}")),
            onto.voc.clone(),
            onto.tbox.clone(),
            &base,
            ServerConfig {
                compact_every: 0, // measure the append path, not compaction
                ..ServerConfig::default()
            },
        )
        .expect("store dir is writable");
        // Warm-up: the first clone after a bulk load pays allocator
        // warm-up that steady-state batches never see.
        srv.apply_batch(&AboxDelta::new()).expect("warm-up");

        let start = Instant::now();
        for batch in &batches {
            srv.apply_batch(batch).expect("append + apply");
        }
        let apply = start.elapsed() / batches.len() as u32;

        let start = Instant::now();
        srv.reload_abox(&full).expect("reload commits");
        let reload = start.elapsed();

        best_apply = best_apply.min(apply);
        best_reload = best_reload.min(reload);
    }
    let apply_ms = best_apply.as_secs_f64() * 1e3;
    let reload_ms = best_reload.as_secs_f64() * 1e3;
    let speedup = reload_ms / apply_ms;
    println!("apply_batch (1% delta) : {apply_ms:>9.3} ms/batch");
    println!(
        "ingest throughput      : {:>9.0} facts/s",
        batch_facts as f64 / best_apply.as_secs_f64()
    );
    println!("reload_abox (full)     : {reload_ms:>9.3} ms   ({speedup:.1}x slower)");

    let (writers_section, writers_ok) =
        concurrent_commits(&dir.join("w"), &onto, &base, &batches, writers);

    let _ = std::fs::remove_dir_all(&dir);

    let path = benchjson::default_path();
    let section = benchjson::JsonObj::new()
        .int("facts", report.facts as u64)
        .num("apply_batch_ms", apply_ms)
        .num(
            "ingest_facts_per_s",
            batch_facts as f64 / best_apply.as_secs_f64(),
        )
        .num("reload_ms", reload_ms)
        .num("apply_vs_reload_speedup", speedup);
    if let Err(e) = benchjson::merge_section(&path, "ingest", &section) {
        eprintln!("cannot write {}: {e}", path.display());
    } else {
        println!("wrote {} [ingest]", path.display());
    }
    if let Err(e) = benchjson::merge_section(&path, "ingest_writers", &writers_section) {
        eprintln!("cannot write {}: {e}", path.display());
    } else {
        println!("wrote {} [ingest_writers]", path.display());
    }

    if check {
        let mut failed = false;
        if speedup < 5.0 {
            eprintln!("FAIL: incremental apply speedup {speedup:.1}x < 5x over full reload");
            failed = true;
        }
        if !writers_ok {
            eprintln!("FAIL: concurrent writers section violated its correctness bars");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "CHECK PASSED: apply_batch >= 5x faster than reload_abox ({speedup:.1}x), \
             {writers} concurrent writers matched the serial apply"
        );
    }
}
