//! Figure 3: evaluation time on the DB2-like engine, over both the simple
//! layout and the DB2RDF-like entity (DPH) layout.
//!
//! Paper findings to reproduce in shape: reformulations against the RDF
//! layout are 1–4 orders of magnitude worse and several *fail outright*
//! with "statement too long" (DB2's ~2 MB limit — the missing bars for
//! Q9/Q10); on the simple layout the GDL-selected covers win by large
//! factors (paper: up to 36×, 4.85× average at the large scale).

use obda_bench::{render_table, run_cell, Cell, Dataset, EstimatorKind, Scale};
use obda_core::Strategy;
use obda_rdbms::{EngineProfile, LayoutKind};

fn main() {
    for scale in [Scale::Small, Scale::Large] {
        let dataset = Dataset::build(scale);
        println!(
            "# Figure 3 — db2-like engine, {} ({} facts)",
            scale.label(),
            dataset.facts
        );
        let mut cells: Vec<Cell> = Vec::new();
        let simple = dataset.engine(LayoutKind::Simple, EngineProfile::db2_like());
        let rdf = dataset.engine(LayoutKind::Dph, EngineProfile::db2_like());
        for q in dataset.workload() {
            cells.push(run_cell(
                &dataset,
                &simple,
                &q,
                &Strategy::Ucq,
                EstimatorKind::Ext,
                "UCQ/simple",
            ));
            cells.push(run_cell(
                &dataset,
                &rdf,
                &q,
                &Strategy::Ucq,
                EstimatorKind::Ext,
                "UCQ/rdf",
            ));
            cells.push(run_cell(
                &dataset,
                &simple,
                &q,
                &Strategy::CrootJucq,
                EstimatorKind::Ext,
                "Croot/simple",
            ));
            cells.push(run_cell(
                &dataset,
                &rdf,
                &q,
                &Strategy::CrootJucq,
                EstimatorKind::Ext,
                "Croot/rdf",
            ));
            cells.push(run_cell(
                &dataset,
                &simple,
                &q,
                &Strategy::Gdl { time_budget: None },
                EstimatorKind::Rdbms,
                "GDL/simple/RDBMS",
            ));
            cells.push(run_cell(
                &dataset,
                &simple,
                &q,
                &Strategy::Gdl { time_budget: None },
                EstimatorKind::Ext,
                "GDL/simple/ext",
            ));
            // GDL on the RDF layout only at the small scale (the paper
            // "gave up GDL on the RDF layout" for the 100M dataset).
            if scale == Scale::Small {
                cells.push(run_cell(
                    &dataset,
                    &rdf,
                    &q,
                    &Strategy::Gdl { time_budget: None },
                    EstimatorKind::Rdbms,
                    "GDL/rdf/RDBMS",
                ));
            }
        }
        println!("{}", render_table("Figure 3", &cells));
        let failures: Vec<&Cell> = cells.iter().filter(|c| c.error.is_some()).collect();
        println!(
            "-- {} statement-too-long failures (paper: Q9/Q10 bars missing on the RDF layout) --",
            failures.len()
        );
        for f in failures {
            println!(
                "  {} {} : {}",
                f.query,
                f.strategy,
                f.error.as_deref().unwrap_or("")
            );
        }
        println!();
    }
}
