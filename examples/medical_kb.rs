//! A clinical-terminology flavored OBDA scenario (the paper's introduction
//! motivates OBDA with SNOMED-CT-style medical ontologies).
//!
//! Shows: authoring a domain TBox with the builder API, consistency
//! checking with disjointness constraints (an inconsistent update is
//! rejected), and cover-based answering of a diagnosis query.
//!
//! Run with: `cargo run --release --example medical_kb`

use obda::core::{choose_reformulation, Strategy, StructuralEstimator};
use obda::dllite::Dependencies;
use obda::prelude::*;

fn main() {
    let mut b = TBoxBuilder::new();
    // A miniature clinical-terms ontology.
    b.sub("BacterialInfection", "Infection")
        .sub("ViralInfection", "Infection")
        .sub("Pneumonia", "RespiratoryDisease")
        .sub("BacterialPneumonia", "Pneumonia")
        .sub("BacterialPneumonia", "BacterialInfection")
        .sub("ViralPneumonia", "Pneumonia")
        .sub("ViralPneumonia", "ViralInfection")
        .sub("Infection", "Disease")
        .sub("RespiratoryDisease", "Disease")
        // Roles: diagnoses link patients to diseases; treatments to drugs.
        .sub("exists diagnosedWith", "Patient")
        .sub("exists diagnosedWith-", "Disease")
        .sub("exists treatedWith", "Patient")
        .sub("exists treatedWith-", "Drug")
        .sub("exists prescribes", "Clinician")
        // Every diagnosed patient receives some treatment (∃ axiom).
        .sub("exists diagnosedWith", "exists treatedWith")
        // Antibiotic treatments are treatments.
        .sub_role("onAntibiotics", "treatedWith")
        // Disjointness: a disease is not a drug; viral is not bacterial.
        .disjoint("Disease", "Drug")
        .disjoint("ViralInfection", "BacterialInfection");
    let (voc, tbox) = b.finish();

    // Facts: specific diagnoses only — the hierarchy is implicit.
    let mut kb = KnowledgeBase::new(voc, tbox, ABox::new());
    let bacterial_pneumonia = kb.voc_mut().concept("BacterialPneumonia");
    let diagnosed = kb.voc_mut().role("diagnosedWith");
    let on_antibiotics = kb.voc_mut().role("onAntibiotics");
    let alice = kb.voc_mut().individual("alice");
    let bob = kb.voc_mut().individual("bob");
    let dx1 = kb.voc_mut().individual("dx_bact_pneumonia");
    let amoxicillin = kb.voc_mut().individual("amoxicillin");
    kb.abox_mut().assert_concept(bacterial_pneumonia, dx1);
    kb.abox_mut().assert_role(diagnosed, alice, dx1);
    kb.abox_mut().assert_role(on_antibiotics, bob, amoxicillin);
    println!("consistent: {}", kb.is_consistent());

    // Query: patients with an infection diagnosis — requires the
    // BacterialPneumonia ⊑ BacterialInfection ⊑ Infection chain.
    let infection = kb.voc().find_concept("Infection").unwrap();
    let q = CQ::with_var_head(
        vec![VarId(0)],
        vec![
            Atom::Role(diagnosed, Term::Var(VarId(0)), Term::Var(VarId(1))),
            Atom::Concept(infection, Term::Var(VarId(1))),
        ],
    );
    println!("query: {}", q.display(kb.voc()));

    let deps = Dependencies::compute(kb.voc(), kb.tbox());
    let chosen = choose_reformulation(
        &q,
        kb.tbox(),
        &deps,
        &StructuralEstimator,
        &Strategy::Gdl { time_budget: None },
    );
    println!(
        "chosen reformulation: {} with {} union terms",
        chosen.fol.dialect(),
        chosen.fol.equivalent_cq_count()
    );
    let answers = eval_over_abox(kb.abox(), &chosen.fol);
    println!(
        "patients with an infection: {:?}",
        answers
            .iter()
            .map(|row| kb.voc().individual_name(row[0]))
            .collect::<Vec<_>>()
    );
    assert_eq!(answers.len(), 1);

    // Query 2: treated patients — alice qualifies only through the
    // existential axiom ∃diagnosedWith ⊑ ∃treatedWith; bob through the
    // antibiotic subrole.
    let treated = kb.voc().find_role("treatedWith").unwrap();
    let q2 = CQ::with_var_head(
        vec![VarId(0)],
        vec![Atom::Role(
            treated,
            Term::Var(VarId(0)),
            Term::Var(VarId(1)),
        )],
    );
    let ucq = perfect_ref(&q2, kb.tbox());
    let treated_patients = eval_over_abox(kb.abox(), &FolQuery::Ucq(ucq));
    println!(
        "treated patients: {:?}",
        treated_patients
            .iter()
            .map(|row| kb.voc().individual_name(row[0]))
            .collect::<Vec<_>>()
    );
    assert_eq!(treated_patients.len(), 2);

    // An inconsistent update: the same diagnosis marked viral AND
    // bacterial violates the disjointness constraint.
    let viral = kb.voc().find_concept("ViralInfection").unwrap();
    kb.abox_mut().assert_concept(viral, dx1);
    println!(
        "after conflicting update, consistent: {}",
        kb.is_consistent()
    );
    assert!(!kb.is_consistent());
    for v in kb.consistency_violations() {
        println!("  violation: {}", v.witness);
    }
}
