//! The durable store, end to end: create a persistent server, apply
//! incremental batches, "crash", and recover — including a torn WAL
//! tail.
//!
//! ```sh
//! cargo run --example persistent_server
//! ```

use obda::dllite::example7_tbox;
use obda::prelude::*;
use obda::rdbms::store;

fn main() {
    let dir = std::env::temp_dir().join(format!("obda-persistent-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // The Example-7 ontology with a few facts.
    let (mut voc, tbox) = example7_tbox();
    let phd = voc.find_concept("PhDStudent").unwrap();
    let works = voc.find_role("worksWith").unwrap();
    let damian = voc.individual("Damian");
    let ioana = voc.individual("Ioana");
    let mut abox = ABox::new();
    abox.assert_concept(phd, damian);
    abox.assert_role(works, ioana, damian);

    // q(x) <- PhDStudent(x)
    let q = CQ::with_var_head(
        vec![VarId(0)],
        vec![Atom::Concept(phd, Term::Var(VarId(0)))],
    );

    // 1. Create: generation-0 snapshot + empty WAL on disk.
    let srv = Server::create_durable(&dir, voc.clone(), tbox, &abox, ServerConfig::default())
        .expect("store directory is writable");
    println!("created durable store in {}", dir.display());
    println!(
        "gen {}: {} answer(s)",
        srv.generation(),
        srv.query(&q).unwrap().outcome.rows.len()
    );

    // 2. Incremental batches: WAL-logged, applied in place (no rebuild),
    //    one snapshot generation each. Batches can intern fresh
    //    individuals; the id is the next dense one.
    let garcia = obda::dllite::IndividualId(voc.num_individuals() as u32);
    let batch = AboxDelta {
        new_individuals: vec!["Garcia".into()],
        ..AboxDelta::new()
    }
    .insert_concept(phd, garcia)
    .insert_role(works, garcia, ioana);
    srv.apply_batch(&batch).expect("logged and applied");
    srv.apply_batch(&AboxDelta::new().insert_concept(phd, ioana))
        .expect("logged and applied");
    println!(
        "gen {}: {} answer(s)",
        srv.generation(),
        srv.query(&q).unwrap().outcome.rows.len()
    );

    // 3. "Crash": drop the server without any shutdown ceremony.
    drop(srv);

    // 4. Recover: snapshot + WAL replay reproduces the exact state.
    let srv = Server::open(&dir, ServerConfig::default()).expect("recovery");
    println!(
        "reopened at gen {}: {} answer(s)",
        srv.generation(),
        srv.query(&q).unwrap().outcome.rows.len()
    );
    assert_eq!(srv.generation(), 2);
    drop(srv);

    // 5. A crash *mid-append* leaves a torn final record: simulate by
    //    chopping bytes off the log, then recover again. The torn batch
    //    was never acknowledged; everything before it survives.
    let wal = dir.join("wal.bin");
    let len = std::fs::metadata(&wal).unwrap().len();
    store::wal::truncate_to(&wal, len - 3).expect("tear the tail");
    let kb = store::recover(&dir).expect("recovery tolerates the tear");
    println!(
        "after torn-tail recovery: gen {} ({} facts), torn = {}",
        kb.generation,
        kb.abox.len(),
        kb.torn_tail
    );
    assert_eq!(kb.generation, 1, "batch 2's record was torn away");

    let srv = Server::open(&dir, ServerConfig::default()).expect("open truncates the tear");
    println!(
        "reopened at gen {}: {} answer(s)",
        srv.generation(),
        srv.query(&q).unwrap().outcome.rows.len()
    );

    drop(srv);
    let _ = std::fs::remove_dir_all(&dir);
}
