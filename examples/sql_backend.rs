//! The SQL-delegation backend, end to end: the same LUBM queries
//! answered by the native planned executor and by generate-SQL → parse →
//! execute, with identical results.
//!
//! ```sh
//! cargo run --release --example sql_backend
//! ```

use std::time::Instant;

use obda::dllite::Dependencies;
use obda::prelude::*;
use obda::rdbms::Backend;

fn main() {
    let mut onto = UnivOntology::build();
    let config = GenConfig {
        target_facts: std::env::var("OBDA_SQL_EXAMPLE_FACTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(800),
        ..Default::default()
    };
    let (abox, _) = generate(&mut onto, &config);
    let deps = Dependencies::compute(&onto.voc, &onto.tbox);
    println!(
        "LUBM KB: {} facts, {} concepts, {} roles\n",
        abox.len(),
        onto.voc.num_concepts(),
        onto.voc.num_roles()
    );

    // §6.3's statement-size limit: reformulations beyond it (the DPH
    // layout's CASE blowup) are *rejected*, not executed — Figure 3.
    let db2_limit = EngineProfile::db2_like()
        .max_statement_bytes
        .expect("DB2 profile models the statement-size limit");

    for layout in [LayoutKind::Simple, LayoutKind::Triple, LayoutKind::Dph] {
        let native = Engine::load(&abox, &onto.voc, layout, EngineProfile::pg_like());
        let sql = native.clone().with_backend(Backend::Sql);
        println!("== layout {:?} ==", layout);
        for w in workload(&onto) {
            let ucq = perfect_ref(&w.cq, &onto.tbox);
            let analysis = QueryAnalysis::new(&w.cq, &deps);
            let croot = root_cover(&analysis);
            let jucq = cover_reformulation(&w.cq, &onto.tbox, &croot.to_specs());
            for (tag, q) in [("ucq", FolQuery::Ucq(ucq)), ("jucq", FolQuery::Jucq(jucq))] {
                let sql_bytes = native.sql_for(&q).len();
                if sql_bytes > db2_limit {
                    println!(
                        "{:>4} {:>5}: statement too long ({:>9} bytes > {} limit) — §6.3/Fig. 3",
                        w.name, tag, sql_bytes, db2_limit
                    );
                    continue;
                }
                let t0 = Instant::now();
                let mut a = native.evaluate(&q).expect("native").rows;
                let t_native = t0.elapsed();
                let t0 = Instant::now();
                let out = sql.evaluate(&q).expect("sql backend");
                let t_sql = t0.elapsed();
                let mut b = out.rows;
                a.sort();
                b.sort();
                assert_eq!(a, b, "{}: backends disagree", w.name);
                println!(
                    "{:>4} {:>5}: {:>5} rows | native {:>9.3?} | sql {:>9.3?} | {:>7} sql bytes",
                    w.name,
                    tag,
                    a.len(),
                    t_native,
                    t_sql,
                    out.sql_bytes,
                );
            }
        }
        println!();
    }
    println!("every executable statement: native rows == sql-backend rows");
}
