//! Quickstart: the paper's running example (Examples 1–4), end to end.
//!
//! Builds the Table-2 TBox and the Example-1 ABox, shows that plain
//! evaluation misses answers, reformulates with PerfectRef, minimizes, and
//! evaluates through the in-memory engine.
//!
//! Run with: `cargo run --release --example quickstart`

use obda::prelude::*;
use obda::query::minimize_ucq;

fn main() {
    // Table 2 of the paper, in the textual KB syntax.
    let kb = KnowledgeBase::parse(
        r#"
# TBox (Table 2)
PhDStudent <= Researcher                     # (T1)
exists worksWith <= Researcher               # (T2)
exists worksWith- <= Researcher              # (T3)
role worksWith <= worksWith-                 # (T4)
role supervisedBy <= worksWith               # (T5)
exists supervisedBy <= PhDStudent            # (T6)
PhDStudent <= not exists supervisedBy-       # (T7)

# ABox (Example 1)
worksWith(Ioana, Francois)                   # (A1)
supervisedBy(Damian, Ioana)                  # (A2)
supervisedBy(Damian, Francois)               # (A3)
"#,
    )
    .expect("valid KB document");

    println!("KB consistent: {}", kb.is_consistent());

    // Example 3's query: q(x) <- PhDStudent(x) ∧ worksWith(y, x).
    let phd = kb.voc().find_concept("PhDStudent").unwrap();
    let works = kb.voc().find_role("worksWith").unwrap();
    let q = CQ::with_var_head(
        vec![VarId(0)],
        vec![
            Atom::Concept(phd, Term::Var(VarId(0))),
            Atom::Role(works, Term::Var(VarId(1)), Term::Var(VarId(0))),
        ],
    );
    println!("query: {}", q.display(kb.voc()));

    // Plain evaluation ignores the ontology: no answers.
    let plain = eval_over_abox(kb.abox(), &FolQuery::Cq(q.clone()));
    println!("plain evaluation: {} answers", plain.len());

    // PerfectRef: Table 5's ten disjuncts.
    let ucq = perfect_ref(&q, kb.tbox());
    println!(
        "UCQ reformulation: {} disjuncts (Table 5 lists q1..q10)",
        ucq.len()
    );
    let minimal = minimize_ucq(&ucq);
    println!("minimal UCQ: {} disjuncts", minimal.len());
    for cq in minimal.cqs() {
        println!("  {}", cq.display(kb.voc()));
    }

    // Evaluate through the engine (simple layout, PostgreSQL-like profile).
    let engine = Engine::load(
        kb.abox(),
        kb.voc(),
        LayoutKind::Simple,
        EngineProfile::pg_like(),
    );
    let outcome = engine
        .evaluate(&FolQuery::Ucq(minimal))
        .expect("fits the statement limit");
    println!(
        "engine answers: {:?} ({} work units, {} bytes of SQL)",
        outcome
            .rows
            .iter()
            .map(|r| kb.voc().individual_name(IndividualId(r[0])))
            .collect::<Vec<_>>(),
        outcome.metrics.work_units() as u64,
        outcome.sql_bytes,
    );

    // Certain-answer oracle agrees.
    let truth = certain_answers(kb.tbox(), kb.abox(), &q);
    assert_eq!(truth.len(), outcome.rows.len());
    println!("oracle agrees: {} answer(s)", truth.len());
}
