//! University OBDA end to end: the LUBM∃-style benchmark pipeline.
//!
//! Generates a university ABox, loads it into the engine, and for a
//! selection of workload queries compares the four reformulation
//! strategies of the paper's Figure 2 (UCQ, Croot-JUCQ, GDL with the
//! engine's estimator, GDL with the external estimator).
//!
//! Run with: `cargo run --release --example university_obda`

use std::time::Instant;

use obda::core::{choose_reformulation, Strategy};
use obda::prelude::*;

fn main() {
    // Build ontology + data (deterministic).
    let mut onto = UnivOntology::build();
    let config = GenConfig {
        target_facts: 30_000,
        ..Default::default()
    };
    let (abox, report) = generate(&mut onto, &config);
    println!(
        "generated {} facts: {} universities, {} departments, {} faculty, {} students",
        report.facts, report.universities, report.departments, report.faculty, report.students
    );
    let dims = onto.dimensions();
    println!(
        "ontology: {} concepts, {} roles, {} constraints",
        dims.concepts, dims.roles, dims.constraints
    );

    let deps = obda::dllite::Dependencies::compute(&onto.voc, &onto.tbox);
    let engine = Engine::load(
        &abox,
        &onto.voc,
        LayoutKind::Simple,
        EngineProfile::pg_like(),
    );

    let strategies: [(&str, Strategy); 3] = [
        ("UCQ", Strategy::Ucq),
        ("Croot", Strategy::CrootJucq),
        ("GDL/ext", Strategy::Gdl { time_budget: None }),
    ];

    for q in workload(&onto) {
        // Keep the demo snappy: skip the two heaviest reformulations.
        if matches!(q.name.as_str(), "Q6" | "Q13") {
            continue;
        }
        println!("\n== {} ({} atoms) ==", q.name, q.cq.num_atoms());
        for (label, strategy) in &strategies {
            let est = engine.ext_cost_model();
            let t = Instant::now();
            let chosen = choose_reformulation(&q.cq, &onto.tbox, &deps, &est, strategy);
            let prep = t.elapsed();
            let t = Instant::now();
            match engine.evaluate(&chosen.fol) {
                Ok(out) => println!(
                    "  {label:<8} {:>6} rows  eval {:>8.2?}  (prep {:>8.2?}, {} union terms, {})",
                    out.rows.len(),
                    t.elapsed(),
                    prep,
                    chosen.fol.equivalent_cq_count(),
                    chosen.fol.dialect(),
                ),
                Err(e) => println!("  {label:<8} ERROR: {e}"),
            }
        }
    }
}
