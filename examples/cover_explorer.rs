//! Cover explorer: walks the paper's Examples 7–11 programmatically —
//! unsafe covers losing answers, the root cover, the safe-cover lattice,
//! generalized covers as semijoin reducers, and the GDL search trace.
//!
//! Run with: `cargo run --release --example cover_explorer`

use obda::core::{
    enumerate_generalized_covers, enumerate_safe_covers, gdl, is_safe, root_cover, GdlConfig,
    QueryAnalysis, StructuralEstimator,
};
use obda::dllite::{example7_tbox, Dependencies};
use obda::prelude::*;
use obda::reform::cover_reformulation;

fn main() {
    // Example 7's KB and query.
    let (mut voc, tbox) = example7_tbox();
    let phd = voc.find_concept("PhDStudent").unwrap();
    let grad = voc.find_concept("Graduate").unwrap();
    let works = voc.find_role("worksWith").unwrap();
    let sup = voc.find_role("supervisedBy").unwrap();
    let damian = voc.individual("Damian");
    let mut abox = ABox::new();
    abox.assert_concept(phd, damian);
    abox.assert_concept(grad, damian);

    let q = CQ::with_var_head(
        vec![VarId(0)],
        vec![
            Atom::Concept(phd, Term::Var(VarId(0))),
            Atom::Role(works, Term::Var(VarId(0)), Term::Var(VarId(1))),
            Atom::Role(sup, Term::Var(VarId(2)), Term::Var(VarId(1))),
        ],
    );
    println!("query (Example 7): {}", q.display(&voc));
    let truth = certain_answers(&tbox, &abox, &q);
    println!("certain answers: {} (Damian)", truth.len());

    let deps = Dependencies::compute(&voc, &tbox);
    let analysis = QueryAnalysis::new(&q, &deps);

    // The unsafe cover C1 separates worksWith from supervisedBy.
    let c1 = Cover::new(vec![Fragment::simple(0b011), Fragment::simple(0b100)]);
    println!("\nC1 = {{PhDStudent, worksWith}} | {{supervisedBy}}");
    println!("  safe? {}", is_safe(&analysis, &c1));
    let jucq = cover_reformulation(&q, &tbox, &c1.to_specs());
    let got = eval_over_abox(&abox, &FolQuery::Jucq(jucq));
    println!("  answers via C1: {} — answers LOST (Example 7)", got.len());

    // The root cover (Example 10) is safe and correct.
    let croot = root_cover(&analysis);
    println!("\nCroot (Example 10): {} fragments", croot.num_fragments());
    println!("  safe? {}", is_safe(&analysis, &croot));
    let jucq = cover_reformulation(&q, &tbox, &croot.to_specs());
    let got = eval_over_abox(&abox, &FolQuery::Jucq(jucq));
    println!("  answers via Croot: {} — correct (Example 9)", got.len());

    // The lattice Lq and the generalized space Gq.
    let lq = enumerate_safe_covers(&analysis, 0);
    let gq = enumerate_generalized_covers(&analysis, 0);
    println!(
        "\n|Lq| = {}, |Gq| = {} (Gq ⊇ Lq, §5)",
        lq.len(),
        gq.covers.len()
    );

    // Example 11's generalized cover: both components become unary thanks
    // to the semijoin-reducer atoms.
    let c3 = Cover::new(vec![
        Fragment::generalized(0b110, 0b110),
        Fragment::generalized(0b011, 0b001),
    ]);
    println!("\nC3 (Example 11) = {{wW,sB}}‖{{wW,sB}} | {{PhD,wW}}‖{{PhD}}");
    let jucq = cover_reformulation(&q, &tbox, &c3.to_specs());
    for (i, comp) in jucq.components().iter().enumerate() {
        println!(
            "  component {i}: {} disjuncts, head arity {}",
            comp.len(),
            comp.head().len()
        );
    }
    let got = eval_over_abox(&abox, &FolQuery::Jucq(jucq));
    println!("  answers via C3: {} — correct (Theorem 3)", got.len());

    // GDL from Croot.
    let out = gdl(
        &q,
        &tbox,
        &analysis,
        &StructuralEstimator,
        &GdlConfig::default(),
    );
    println!(
        "\nGDL: explored {} simple + {} generalized covers, {} moves, cost {:.1}",
        out.explored_simple, out.explored_generalized, out.moves_applied, out.cost
    );
    println!(
        "  selected cover is {}",
        if out.cover.is_simple() {
            "simple"
        } else {
            "generalized"
        }
    );
}
