//! # obda — cover-based cost-driven query answering for DL-LiteR
//!
//! A from-scratch Rust reproduction of *"Teaching an RDBMS about
//! ontological constraints"* (Bursztyn, Goasdoué, Manolescu, VLDB 2016):
//! ontology-based data access where answering a conjunctive query `q`
//! under a DL-LiteR TBox `T` reduces to evaluating a FOL reformulation of
//! `q` over the plain data — and where, instead of the single textbook UCQ
//! reformulation, a cost-driven search picks the cheapest among many
//! equivalent **cover-based** reformulations (JUCQs/JUSCQs).
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`dllite`] — knowledge bases: vocabulary, TBox/ABox, saturation,
//!   dependencies (`dep(N)`), consistency, bounded chase;
//! * [`query`] — the FOL dialects of the paper's Table 4 plus
//!   homomorphisms, containment, minimization and a reference evaluator;
//! * [`reform`] — PerfectRef CQ-to-UCQ reformulation, USCQ factorization,
//!   fragment queries and cover-based reformulation;
//! * [`core`] — covers, safety, the lattice `Lq`, the generalized space
//!   `Gq`, and the EDL/GDL cost-driven searches;
//! * [`rdbms`] — the in-memory engine substrate: three storage layouts,
//!   planner/executor, SQL generation plus an embedded SQL execution
//!   backend (`rdbms::sqlexec`, selectable via `Backend::Sql` — the
//!   paper's delegate-to-the-RDBMS loop, closed), engine profiles, cost
//!   models, the concurrent serving layer (snapshots + plan cache +
//!   parallel union-arm execution), and the durable ABox store (binary
//!   snapshots, write-ahead log, crash recovery, incremental apply);
//! * [`lubm`] — the LUBM∃-style benchmark: ontology, data generator,
//!   workload queries.
//!
//! ## Quickstart
//!
//! ```
//! use obda::prelude::*;
//!
//! // A tiny KB: PhD students are researchers; the ABox stores only the
//! // specific fact.
//! let kb = KnowledgeBase::parse(
//!     "PhDStudent <= Researcher\nPhDStudent(Damian)",
//! )
//! .unwrap();
//!
//! // q(x) <- Researcher(x): evaluation alone finds nothing…
//! let researcher = kb.voc().find_concept("Researcher").unwrap();
//! let q = CQ::with_var_head(
//!     vec![VarId(0)],
//!     vec![Atom::Concept(researcher, Term::Var(VarId(0)))],
//! );
//! assert!(eval_over_abox(kb.abox(), &FolQuery::Cq(q.clone())).is_empty());
//!
//! // …but the UCQ reformulation folds the ontology into the query.
//! let ucq = perfect_ref(&q, kb.tbox());
//! let answers = eval_over_abox(kb.abox(), &FolQuery::Ucq(ucq));
//! assert_eq!(answers.len(), 1);
//! ```

pub use obda_core as core;
pub use obda_dllite as dllite;
pub use obda_lubm as lubm;
pub use obda_query as query;
pub use obda_rdbms as rdbms;
pub use obda_reform as reform;

/// The most commonly used items, for examples and downstream callers.
pub mod prelude {
    pub use obda_core::{
        choose_reformulation, choose_reformulation_constrained, edl, gdl, root_cover,
        CostEstimator, Cover, Fragment, GdlConfig, QueryAnalysis, Strategy, StructuralEstimator,
    };
    pub use obda_dllite::{
        is_consistent, ABox, AboxDelta, Axiom, BasicConcept, ConceptId, ConstraintSet,
        IndividualId, KnowledgeBase, PredId, Role, RoleId, TBox, TBoxBuilder, Vocabulary,
    };
    pub use obda_lubm::{generate, star_query, workload, GenConfig, UnivOntology};
    pub use obda_query::{
        certain_answers, eval_over_abox, Atom, FolQuery, Term, VarId, CQ, JUCQ, UCQ,
    };
    pub use obda_rdbms::{
        Backend, DurableStore, Engine, EngineProfile, ExplainEstimator, LayoutKind,
        MetricsEndpoint, MetricsRegistry, Server, ServerConfig, ServerError, StoreError, Txn,
    };
    pub use obda_reform::{
        cover_reformulation, fragment_query, perfect_ref, perfect_ref_pruned, FragmentSpec,
    };
}

#[cfg(test)]
mod tests {
    /// The eleven root integration suites rely on cargo's `tests/`
    /// autodiscovery. Guard against someone disabling it or renaming a
    /// suite file: each must exist, and the manifest must not opt out.
    #[test]
    fn integration_suites_are_registered() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
        for suite in [
            "end_to_end",
            "paper_examples",
            "failure_injection",
            "equivalence_props",
            "differential",
            "concurrency",
            "persistence",
            "sql_goldens",
            "pgwire",
            "transactions",
            "constraints",
        ] {
            let path = root.join("tests").join(format!("{suite}.rs"));
            assert!(
                path.is_file(),
                "integration suite missing: {}",
                path.display()
            );
        }
        let manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap();
        let disables_autotests = manifest
            .lines()
            .map(|l| l.split('#').next().unwrap_or("").replace([' ', '\t'], ""))
            .any(|l| l.starts_with("autotests=false"));
        assert!(
            !disables_autotests,
            "tests/ autodiscovery must stay enabled so all eleven suites are test targets"
        );
    }
}
