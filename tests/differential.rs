//! The differential suite: physical-operator equivalence as an oracle.
//!
//! The executor owns two physical join operators (index-nested-loop and
//! build/probe hash join) plus a cost-chosen mix. These tests prove the
//! three modes interchangeable on every storage layout:
//!
//! * property tests over random KBs and random queries in *every*
//!   Table-4 dialect (CQ/UCQ/SCQ/USCQ/JUCQ/JUSCQ);
//! * an end-to-end sweep over the 14 LUBM workload queries, reformulated
//!   both via PerfectRef (UCQ) and via cover-based reformulation (JUCQ);
//! * the metering audit: per-union-arm metrics sum to statement totals;
//! * the performance guarantee behind the cost-chosen default: measured
//!   work never exceeds forced-INL on the LUBM workload.
//!
//! Case counts honour `PROPTEST_CASES` (CI's differential job raises it
//! to 512; the default quick run stays small).

use proptest::prelude::*;

use obda::dllite::Dependencies;
use obda::prelude::*;
use obda::query::testkit::{
    random_abox, random_delta, random_fol_query, random_tbox, random_ucq, KbShape, Rng,
};
use obda::rdbms::testkit::{
    differential_check, differential_constraints_check, differential_constraints_mutation_check,
    differential_mutation_check, ALL_STRATEGIES,
};
use obda::rdbms::{Backend, JoinStrategy};

/// A deterministic random scenario: vocabulary, ABox, any-dialect query.
fn scenario(seed: u64, shape: &KbShape, max_atoms: usize) -> (Vocabulary, ABox, FolQuery) {
    let mut rng = Rng::new(seed);
    let (mut voc, _) = random_tbox(&mut rng, shape);
    let abox = random_abox(&mut rng, &mut voc, shape);
    let q = random_fol_query(&mut rng, &voc, max_atoms);
    (voc, abox, q)
}

proptest! {
    // Configured high so CI's differential job (PROPTEST_CASES=512) can
    // run the full complement; the main job's PROPTEST_CASES=32 keeps
    // the quick run quick (the vendored proptest only caps downward).
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Forced-hash ≡ forced-INL ≡ cost-chosen on all three layouts, for
    /// random queries in every dialect over random ABoxes.
    #[test]
    fn physical_strategies_agree_on_random_queries(seed in 0u64..1_000_000) {
        let (voc, abox, q) = scenario(seed, &KbShape::default(), 4);
        differential_check(&voc, &abox, &q, &format!("seed {seed}"));
    }

    /// Denser ABoxes (more individuals and facts) push the planner's
    /// cardinality estimates high enough that cost-chosen plans really
    /// mix operators — same equivalence must hold.
    #[test]
    fn physical_strategies_agree_on_dense_aboxes(seed in 0u64..1_000_000) {
        let shape = KbShape {
            num_individuals: 30,
            num_facts: 120,
            ..KbShape::default()
        };
        let (voc, abox, q) = scenario(seed, &shape, 5);
        differential_check(&voc, &abox, &q, &format!("dense seed {seed}"));
    }

    /// The reformulation pipeline feeds the engine UCQs: PerfectRef
    /// output over random TBoxes must answer identically under every
    /// strategy too (and the arm-metrics invariant holds per arm).
    #[test]
    fn reformulated_ucqs_agree(seed in 0u64..1_000_000) {
        let mut rng = Rng::new(seed);
        let shape = KbShape::default();
        let (mut voc, tbox) = random_tbox(&mut rng, &shape);
        let abox = random_abox(&mut rng, &mut voc, &shape);
        let cq = obda::query::testkit::random_connected_cq(&mut rng, &voc, 3, 2);
        let ucq = perfect_ref(&cq, &tbox);
        if !ucq.is_empty() {
            differential_check(&voc, &abox, &FolQuery::Ucq(ucq), &format!("reform seed {seed}"));
        }
    }

    /// The **mutation phase**: apply a random `AboxDelta` (inserts over
    /// known and batch-fresh individuals, duplicate inserts, deletes of
    /// existing and of missing facts), then assert the incremental
    /// engines answer exactly like engines rebuilt from scratch — across
    /// all layout × strategy combinations, with counter-exact catalog
    /// statistics — and that the full differential harness still holds
    /// on the mutated state.
    #[test]
    fn incremental_apply_matches_rebuild(seed in 0u64..1_000_000) {
        let mut rng = Rng::new(seed);
        let shape = KbShape::default();
        let (mut voc, _) = random_tbox(&mut rng, &shape);
        let abox = random_abox(&mut rng, &mut voc, &shape);
        let q = random_fol_query(&mut rng, &voc, 4);
        let delta = random_delta(&mut rng, &voc, &abox, 8, 0);
        differential_mutation_check(&voc, &abox, &delta, &q, &format!("mutation seed {seed}"));

        // The mutated state is an ordinary KB: the full harness
        // (18 executions + stored-plan replay + parallel arms) holds.
        let mut mutated = abox.clone();
        for name in &delta.new_individuals {
            voc.individual(name);
        }
        mutated.apply(&delta);
        differential_check(&voc, &mutated, &q, &format!("post-mutation seed {seed}"));
    }

    /// Chained mutation: N sequential deltas applied incrementally to
    /// one engine must leave its statistics counter-exact vs. a rebuild
    /// from the final ABox, on every layout (deletes that empty tables
    /// and re-inserts included).
    #[test]
    fn chained_deltas_keep_stats_exact(seed in 0u64..1_000_000) {
        let mut rng = Rng::new(seed);
        let shape = KbShape::default();
        let (mut voc, _) = random_tbox(&mut rng, &shape);
        let mut abox = random_abox(&mut rng, &mut voc, &shape);
        let mut engines: Vec<_> = [LayoutKind::Simple, LayoutKind::Triple, LayoutKind::Dph]
            .into_iter()
            .map(|l| Engine::load(&abox, &voc, l, EngineProfile::pg_like()))
            .collect();
        for step in 0..4 {
            let delta = random_delta(&mut rng, &voc, &abox, 6, step);
            for name in &delta.new_individuals {
                voc.individual(name);
            }
            let effective = abox.apply(&delta);
            for engine in &mut engines {
                engine.apply_delta(&effective);
            }
        }
        let want = obda::rdbms::CatalogStats::from_abox(&abox);
        for engine in &engines {
            prop_assert_eq!(
                engine.stats(),
                &want,
                "seed {}: {:?} stats drifted from rebuild",
                seed,
                engine.layout()
            );
        }
    }

    /// Random *UCQs* (not just reformulations) with several arms keep
    /// the per-arm metering invariant under every strategy — the
    /// regression test for the meter audit.
    #[test]
    fn ucq_arm_metrics_sum_to_totals(seed in 0u64..1_000_000) {
        let mut rng = Rng::new(seed);
        let shape = KbShape::default();
        let (mut voc, _) = random_tbox(&mut rng, &shape);
        let abox = random_abox(&mut rng, &mut voc, &shape);
        let ucq = random_ucq(&mut rng, &voc, 4, 3);
        let arms = ucq.len();
        let q = FolQuery::Ucq(ucq);
        for layout in [LayoutKind::Simple, LayoutKind::Triple, LayoutKind::Dph] {
            let engine = Engine::load(&abox, &voc, layout, EngineProfile::pg_like());
            for strategy in ALL_STRATEGIES {
                let out = engine.evaluate_with(&q, strategy).unwrap();
                prop_assert_eq!(out.arm_metrics.len(), arms);
                // The harness asserts counter-by-counter equality:
                obda::rdbms::testkit::assert_arm_metrics_sum(
                    &q,
                    &out,
                    &format!("seed {seed} {layout:?} {}", strategy.name()),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// LUBM end-to-end differential
// ---------------------------------------------------------------------

/// Shared LUBM fixture: dataset plus the 14 workload queries (Q1–Q13 +
/// the A5 star query), each pre-reformulated via PerfectRef (UCQ) and
/// via the root cover (JUCQ). Built once per process.
struct LubmFixture {
    onto: UnivOntology,
    abox: ABox,
    /// (name, UCQ reformulation, root-cover JUCQ reformulation).
    queries: Vec<(String, UCQ, JUCQ)>,
}

fn lubm_fixture() -> &'static LubmFixture {
    static FIXTURE: std::sync::OnceLock<LubmFixture> = std::sync::OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut onto = UnivOntology::build();
        let config = GenConfig {
            target_facts: 800,
            ..Default::default()
        };
        let (abox, _) = generate(&mut onto, &config);
        let deps = Dependencies::compute(&onto.voc, &onto.tbox);
        let mut cqs: Vec<(String, CQ)> = workload(&onto)
            .into_iter()
            .map(|w| (w.name, w.cq))
            .collect();
        cqs.push(("A5".to_owned(), star_query(&onto, 5)));
        let queries = cqs
            .into_iter()
            .map(|(name, cq)| {
                let ucq = perfect_ref(&cq, &onto.tbox);
                let analysis = QueryAnalysis::new(&cq, &deps);
                let croot = root_cover(&analysis);
                let jucq = cover_reformulation(&cq, &onto.tbox, &croot.to_specs());
                (name, ucq, jucq)
            })
            .collect();
        LubmFixture {
            onto,
            abox,
            queries,
        }
    })
}

/// All 14 LUBM queries, reformulated via PerfectRef (UCQ) **and** via
/// cover-based reformulation (root-cover JUCQ), produce identical
/// answers under forced-INL, forced-hash, and cost-chosen execution.
#[test]
fn lubm_workload_differential_across_reformulations() {
    let fx = lubm_fixture();
    let engine = Engine::load(
        &fx.abox,
        &fx.onto.voc,
        LayoutKind::Simple,
        EngineProfile::pg_like(),
    );
    assert_eq!(fx.queries.len(), 14);
    for (name, ucq, jucq) in &fx.queries {
        let mut results: Vec<Vec<Vec<u32>>> = Vec::new();
        for strategy in ALL_STRATEGIES {
            for q in [FolQuery::Ucq(ucq.clone()), FolQuery::Jucq(jucq.clone())] {
                let mut rows = engine
                    .evaluate_with(&q, strategy)
                    .expect("pg-like: no statement limit")
                    .rows;
                rows.sort();
                results.push(rows);
            }
        }
        for r in &results[1..] {
            assert_eq!(
                r, &results[0],
                "{name}: reformulation × strategy row-set mismatch"
            );
        }
    }
}

/// The SQL-delegation acceptance bar: all 14 LUBM workload queries,
/// reformulated via PerfectRef (UCQ) **and** via the root cover (JUCQ),
/// answered through generate-SQL → parse → execute on every layout with
/// exactly the native executor's row sets — the paper's "delegate to the
/// RDBMS" loop, closed end to end.
///
/// Statements beyond the DB2 statement-size limit are the *other* half
/// of the paper's story: §6.3 finds reformulations on the RDF layout
/// "too large for evaluation" (Figure 3's "statement is too long or too
/// complex"). For those, the asserted behaviour is the rejection itself
/// — a DB2-profiled engine must refuse them — instead of a
/// multi-hundred-megabyte execution.
#[test]
fn lubm_workload_sql_backend_parity() {
    let fx = lubm_fixture();
    let native = Engine::load(
        &fx.abox,
        &fx.onto.voc,
        LayoutKind::Simple,
        EngineProfile::pg_like(),
    );
    let db2_limit = EngineProfile::db2_like()
        .max_statement_bytes
        .expect("the DB2 profile models the §6.3 statement-size limit");
    let mut executed = [0usize; 3];
    let mut rejected = 0usize;
    for (li, layout) in [LayoutKind::Simple, LayoutKind::Triple, LayoutKind::Dph]
        .into_iter()
        .enumerate()
    {
        let sql_engine = Engine::load(&fx.abox, &fx.onto.voc, layout, EngineProfile::pg_like())
            .with_backend(Backend::Sql);
        let db2_engine = Engine::load(&fx.abox, &fx.onto.voc, layout, EngineProfile::db2_like())
            .with_backend(Backend::Sql);
        for (name, ucq, jucq) in &fx.queries {
            for q in [FolQuery::Ucq(ucq.clone()), FolQuery::Jucq(jucq.clone())] {
                // Generate the statement once; the size check and the
                // evaluation below both reuse it (DPH translations reach
                // hundreds of megabytes).
                let sql = sql_engine.sql_for(&q);
                let opts = obda::rdbms::EvalOptions {
                    sql_text: Some(&sql),
                    sql_bytes: Some(sql.len()),
                    ..Default::default()
                };
                if sql.len() > db2_limit {
                    // Figure 3: the statement cannot run at all (the
                    // rejection comes from the cached length alone).
                    let err = db2_engine
                        .evaluate_opts(&q, &opts)
                        .expect_err("oversized statement must be refused");
                    assert!(
                        matches!(err, obda::rdbms::EngineError::StatementTooLong { .. }),
                        "{name}: wrong rejection under {layout:?}: {err}"
                    );
                    rejected += 1;
                    continue;
                }
                let mut want = native.evaluate(&q).unwrap().rows;
                want.sort();
                let out = sql_engine
                    .evaluate_opts(&q, &opts)
                    .unwrap_or_else(|e| panic!("{name}: SQL backend failed under {layout:?}: {e}"));
                let mut rows = out.rows;
                rows.sort();
                assert_eq!(rows, want, "{name}: SQL backend mismatch under {layout:?}");
                assert!(out.sql_bytes > 0);
                executed[li] += 1;
            }
        }
    }
    // Guard the test's own coverage: most statements execute on the
    // compact layouts, and the RDF layout both executes several AND
    // reproduces the Figure-3 rejections.
    assert!(
        executed[0] >= 20 && executed[1] >= 20,
        "simple/triple must execute most statements: {executed:?}"
    );
    assert!(
        executed[2] >= 8,
        "DPH must execute its within-limit statements: {executed:?}"
    );
    assert!(
        rejected >= 4,
        "the §6.3 statement-size failures must be reproduced ({rejected} rejected)"
    );
}

/// The acceptance bar for the cost-chosen default: measured work units
/// never exceed forced-INL on any LUBM PerfectRef reformulation, and the
/// scan-heavy arms win by a clear margin in aggregate.
#[test]
fn cost_chosen_work_never_exceeds_forced_inl_on_lubm() {
    let fx = lubm_fixture();
    let engine = Engine::load(
        &fx.abox,
        &fx.onto.voc,
        LayoutKind::Simple,
        EngineProfile::pg_like(),
    );
    let mut total_inl = 0.0f64;
    let mut total_chosen = 0.0f64;
    for (name, ucq, _) in &fx.queries {
        let q = FolQuery::Ucq(ucq.clone());
        let inl = engine
            .evaluate_with(&q, JoinStrategy::ForcedInl)
            .unwrap()
            .metrics
            .work_units();
        let chosen = engine
            .evaluate_with(&q, JoinStrategy::CostChosen)
            .unwrap()
            .metrics
            .work_units();
        // Per query: at least matching (small tolerance for estimate
        // noise around the break-even point).
        assert!(
            chosen <= inl * 1.05 + 50.0,
            "{name}: cost-chosen {chosen} worse than forced-INL {inl}"
        );
        total_inl += inl;
        total_chosen += chosen;
    }
    // In aggregate the mix must strictly win on this scan-heavy workload.
    assert!(
        total_chosen < total_inl,
        "aggregate: chosen {total_chosen} vs inl {total_inl}"
    );
}

// ---------------------------------------------------------------------
// serving-layer differential: plan cache on/off × threads 1/N
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The serving layer must be answer-invisible: a warm plan cache
    /// with parallel arm execution returns exactly the rows of a cold
    /// per-call pipeline, including on a head-renamed / atom-reordered
    /// variant of the query (which must HIT the canonical-key cache).
    /// Any divergence here is a cache-key or merge-order bug.
    #[test]
    fn serving_layer_parity_cache_and_threads(seed in 0u64..1_000_000) {
        let mut rng = Rng::new(seed);
        let shape = KbShape::default();
        let (mut voc, tbox) = random_tbox(&mut rng, &shape);
        let abox = random_abox(&mut rng, &mut voc, &shape);
        let cq = obda::query::testkit::random_connected_cq(&mut rng, &voc, 3, 2);

        let cold = Server::new(voc.clone(), tbox.clone(), &abox, ServerConfig {
            cache_plans: false,
            threads: 1,
            ..ServerConfig::default()
        });
        let warm = Server::new(voc.clone(), tbox.clone(), &abox, ServerConfig {
            cache_plans: true,
            threads: 3,
            ..ServerConfig::default()
        });

        let mut want = cold.query(&cq).unwrap().outcome.rows;
        want.sort();

        let miss = warm.query(&cq).unwrap();
        prop_assert!(!miss.cache_hit);
        let mut got = miss.outcome.rows;
        got.sort();
        prop_assert_eq!(&got, &want, "seed {}: cold vs warm-miss", seed);

        // Head vars renamed (+100), atoms reversed: same canonical key,
        // same answers, served from the cache.
        let shift = |t: &Term| match t {
            Term::Var(v) => Term::Var(VarId(v.0 + 100)),
            c => *c,
        };
        let variant = CQ::new(
            cq.head().iter().map(&shift).collect(),
            cq.atoms().iter().rev().map(|a| a.map_vars(|v| shift(&Term::Var(v)))).collect(),
        );
        let hit = warm.query(&variant).unwrap();
        prop_assert!(hit.cache_hit, "seed {}: variant must hit the cache", seed);
        let mut rows = hit.outcome.rows;
        rows.sort();
        prop_assert_eq!(&rows, &want, "seed {}: cached plan vs cold pipeline", seed);
    }
}

// ---------------------------------------------------------------------
// constraints parity: pruning is invisible in the answers
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Constraint-driven reformulation pruning is answer-invisible on
    /// random KBs: for random connected CQs over random TBoxes, the
    /// constraints mined from the ABox prune only union arms the
    /// reference evaluator shows empty or subsumed, and the answers
    /// stay row-identical — across both parity strategies, all three
    /// layouts and both execution backends.
    #[test]
    fn constraint_pruning_is_answer_invisible(seed in 0u64..1_000_000) {
        let mut rng = Rng::new(seed);
        let shape = KbShape::default();
        let (mut voc, tbox) = random_tbox(&mut rng, &shape);
        let abox = random_abox(&mut rng, &mut voc, &shape);
        let atoms = 1 + rng.below(3);
        let cq = obda::query::testkit::random_connected_cq(&mut rng, &voc, atoms, 2);
        differential_constraints_check(&voc, &tbox, &abox, &cq, &format!("cons seed {seed}"));
    }

    /// After a random ABox mutation, stale constraints must never be
    /// applied: the harness re-mines on the mutated state, asserts the
    /// stale set is genuinely violated whenever it stops holding, and
    /// re-runs the full constraints parity sweep against fresh
    /// constraints only.
    #[test]
    fn stale_constraints_never_survive_mutation(seed in 0u64..1_000_000) {
        let mut rng = Rng::new(seed);
        let shape = KbShape::default();
        let (mut voc, tbox) = random_tbox(&mut rng, &shape);
        let abox = random_abox(&mut rng, &mut voc, &shape);
        let atoms = 1 + rng.below(3);
        let cq = obda::query::testkit::random_connected_cq(&mut rng, &voc, atoms, 2);
        let delta = random_delta(&mut rng, &voc, &abox, 8, seed as usize);
        differential_constraints_mutation_check(
            &voc,
            &tbox,
            &abox,
            &delta,
            &cq,
            &format!("cons mutation seed {seed}"),
        );
    }
}
