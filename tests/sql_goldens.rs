//! Golden tests for `SqlGenerator` output.
//!
//! The generated SQL is now load-bearing twice over: it is the
//! statement-size story of §6.3 (Figure 3's "statement too long"
//! failures), and it is the *input* of the `sqlexec` backend, whose
//! parser accepts exactly this dialect. Any change to the emitted text
//! must therefore be reviewed, not silent: these tests snapshot the SQL
//! for the paper's Example-7 predicates across all three layouts and
//! compare byte-for-byte against `tests/goldens/*.sql`.
//!
//! To bless an intentional dialect change:
//!
//! ```sh
//! OBDA_BLESS=1 cargo test --test sql_goldens && cargo test --test sql_goldens
//! ```
//!
//! Every golden must also parse: the snapshot files double as parser
//! conformance inputs for `obda::rdbms::sqlexec`.

use std::path::PathBuf;

use obda::dllite::{ConceptId, RoleId, Vocabulary};
use obda::query::{Atom, FolQuery, Slot, Term, VarId, CQ, JUCQ, SCQ, UCQ};
use obda::rdbms::sqlexec::parse;
use obda::rdbms::{LayoutKind, SqlGenerator, SqlNames};

fn names() -> SqlNames {
    let mut voc = Vocabulary::new();
    voc.concept("PhDStudent");
    voc.concept("Researcher");
    voc.role("worksWith");
    voc.role("supervisedBy");
    SqlNames::from_vocabulary(&voc)
}

fn v(i: u32) -> Term {
    Term::Var(VarId(i))
}

fn generator(layout: LayoutKind) -> SqlGenerator {
    SqlGenerator::new(names(), layout)
}

/// Example 7's shape: q(x) ← PhDStudent(x) ∧ worksWith(x, y).
fn example_cq() -> CQ {
    CQ::with_var_head(
        vec![VarId(0)],
        vec![
            Atom::Concept(ConceptId(0), v(0)),
            Atom::Role(RoleId(0), v(0), v(1)),
        ],
    )
}

fn check_golden(name: &str, actual: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "goldens", name]
        .iter()
        .collect();
    if std::env::var_os("OBDA_BLESS").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden {name}; bless with OBDA_BLESS=1"));
    assert_eq!(
        actual, want,
        "generated SQL drifted from tests/goldens/{name}; review the dialect \
         change and re-bless with OBDA_BLESS=1 if intended"
    );
    // The snapshot is also a parser conformance input.
    parse(actual).unwrap_or_else(|e| panic!("golden {name} no longer parses: {e}"));
}

#[test]
fn cq_sql_is_pinned_on_every_layout() {
    let q = FolQuery::Cq(example_cq());
    for (layout, file) in [
        (LayoutKind::Simple, "cq_simple.sql"),
        (LayoutKind::Triple, "cq_triple.sql"),
        (LayoutKind::Dph, "cq_dph.sql"),
    ] {
        check_golden(file, &generator(layout).generate(&q));
    }
}

#[test]
fn jucq_with_form_is_pinned() {
    // Two components joined on the shared head variable — §3's
    // `WITH sqlN AS (…)` shape.
    let comp1 = UCQ::from_cqs(
        vec![v(0)],
        [
            CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(0), v(0))]),
            CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(1), v(0))]),
        ],
    );
    let comp2 = UCQ::single(CQ::with_var_head(
        vec![VarId(0)],
        vec![Atom::Role(RoleId(0), v(0), v(1))],
    ));
    let jucq = JUCQ::new(vec![v(0)], vec![comp1, comp2]);
    check_golden(
        "jucq_simple.sql",
        &generator(LayoutKind::Simple).generate(&FolQuery::Jucq(jucq)),
    );
}

#[test]
fn disjunctive_slot_sql_is_pinned() {
    // A slot with a *flipped* second arm: worksWith(x, y) ∨
    // supervisedBy(y, x). The union source must align columns by
    // variable (the executor keys slot extensions by variable, and the
    // sqlexec differential caught the earlier positional form as
    // wrong) — this golden pins the corrected shape.
    let slot = Slot::new(vec![
        Atom::Role(RoleId(0), v(0), v(1)),
        Atom::Role(RoleId(1), v(1), v(0)),
    ]);
    let scq = SCQ::new(
        vec![v(0)],
        vec![Slot::single(Atom::Concept(ConceptId(0), v(0))), slot],
    );
    for (layout, file) in [
        (LayoutKind::Simple, "scq_slot_simple.sql"),
        (LayoutKind::Triple, "scq_slot_triple.sql"),
    ] {
        check_golden(
            file,
            &generator(layout).generate(&FolQuery::Scq(scq.clone())),
        );
    }
}

#[test]
fn boolean_and_constant_forms_are_pinned() {
    // Boolean query: the marker-select form.
    let boolean = CQ::with_var_head(vec![], vec![Atom::Concept(ConceptId(0), v(0))]);
    check_golden(
        "boolean_simple.sql",
        &generator(LayoutKind::Simple).generate(&FolQuery::Cq(boolean)),
    );
    // Constants become literals in the WHERE clause.
    let constant = CQ::new(
        vec![v(0)],
        vec![Atom::Role(
            RoleId(1),
            v(0),
            Term::Const(obda::dllite::IndividualId(42)),
        )],
    );
    check_golden(
        "constant_simple.sql",
        &generator(LayoutKind::Simple).generate(&FolQuery::Cq(constant)),
    );
}
