//! Property tests of the paper's central theorems on randomized KBs:
//!
//! * Theorem 1 — safe-cover JUCQ reformulations compute the certain
//!   answers;
//! * Theorem 3 — generalized-cover reformulations too;
//! * FOL reducibility — the UCQ reformulation over the plain ABox equals
//!   the chase oracle;
//! * engine vs reference evaluator — every layout computes what the
//!   reference evaluator computes.

use proptest::prelude::*;

use obda::core::{enumerate_generalized_covers, enumerate_safe_covers, QueryAnalysis};
use obda::dllite::Dependencies;
use obda::prelude::*;
use obda::query::testkit::{random_abox, random_connected_cq, random_tbox, KbShape, Rng};
use obda::reform::cover_reformulation;

/// Deterministic fixture from a seed: TBox + ABox + connected CQ.
fn fixture(seed: u64, atoms: usize) -> (Vocabulary, TBox, ABox, CQ) {
    let mut rng = Rng::new(seed);
    let shape = KbShape::default();
    let (mut voc, tbox) = random_tbox(&mut rng, &shape);
    let abox = random_abox(&mut rng, &mut voc, &shape);
    let cq = random_connected_cq(&mut rng, &voc, atoms, 2);
    (voc, tbox, abox, cq)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FOL reducibility: ans(q, ⟨T, A⟩) = ans(qUCQ, ⟨∅, A⟩).
    #[test]
    fn fol_reducibility(seed in 0u64..5_000, atoms in 1usize..4) {
        let (_voc, tbox, abox, cq) = fixture(seed, atoms);
        let truth = certain_answers(&tbox, &abox, &cq);
        let ucq = perfect_ref(&cq, &tbox);
        let got = eval_over_abox(&abox, &FolQuery::Ucq(ucq));
        prop_assert_eq!(got, truth);
    }

    /// Theorem 1: every safe cover's JUCQ equals the certain answers.
    #[test]
    fn theorem1_safe_covers(seed in 0u64..3_000, atoms in 2usize..4) {
        let (voc, tbox, abox, cq) = fixture(seed, atoms);
        let deps = Dependencies::compute(&voc, &tbox);
        let analysis = QueryAnalysis::new(&cq, &deps);
        let truth = certain_answers(&tbox, &abox, &cq);
        for cover in enumerate_safe_covers(&analysis, 8) {
            let jucq = cover_reformulation(&cq, &tbox, &cover.to_specs());
            let got = eval_over_abox(&abox, &FolQuery::Jucq(jucq));
            prop_assert_eq!(&got, &truth, "cover {:?}", cover);
        }
    }

    /// Theorem 3: generalized covers too.
    #[test]
    fn theorem3_generalized_covers(seed in 0u64..3_000, atoms in 2usize..4) {
        let (voc, tbox, abox, cq) = fixture(seed, atoms);
        let deps = Dependencies::compute(&voc, &tbox);
        let analysis = QueryAnalysis::new(&cq, &deps);
        let truth = certain_answers(&tbox, &abox, &cq);
        let space = enumerate_generalized_covers(&analysis, 12);
        for cover in &space.covers {
            let jucq = cover_reformulation(&cq, &tbox, &cover.to_specs());
            let got = eval_over_abox(&abox, &FolQuery::Jucq(jucq));
            prop_assert_eq!(&got, &truth, "cover {:?}", cover);
        }
    }

    /// Engine layouts agree with the reference evaluator on arbitrary
    /// (non-reformulated) queries.
    #[test]
    fn engines_match_reference(seed in 0u64..5_000, atoms in 1usize..4) {
        let (voc, _tbox, abox, cq) = fixture(seed, atoms);
        let q = FolQuery::Cq(cq);
        let mut want: Vec<Vec<u32>> = eval_over_abox(&abox, &q)
            .into_iter()
            .map(|row| row.into_iter().map(|i| i.0).collect())
            .collect();
        want.sort();
        for layout in [LayoutKind::Simple, LayoutKind::Triple, LayoutKind::Dph] {
            let engine = Engine::load(&abox, &voc, layout, EngineProfile::pg_like());
            let mut got = engine.evaluate(&q).expect("no limit").rows;
            got.sort();
            prop_assert_eq!(&got, &want, "layout {:?}", layout);
        }
    }

    /// The vectorized (batched) pipeline — the default native path — and
    /// the classic row-at-a-time pipeline are observationally identical:
    /// same answer sets AND same meter totals on every counter, across
    /// all three layouts and all three join strategies.
    #[test]
    fn batched_and_row_execution_agree(seed in 0u64..5_000, atoms in 1usize..4) {
        use obda::rdbms::{EvalOptions, ExecMode, JoinStrategy};
        let (voc, _tbox, abox, cq) = fixture(seed, atoms);
        let q = FolQuery::Cq(cq);
        for layout in [LayoutKind::Simple, LayoutKind::Triple, LayoutKind::Dph] {
            let engine = Engine::load(&abox, &voc, layout, EngineProfile::pg_like());
            for strategy in [
                JoinStrategy::ForcedInl,
                JoinStrategy::ForcedHash,
                JoinStrategy::CostChosen,
            ] {
                let run = |mode: ExecMode| {
                    engine
                        .evaluate_opts(
                            &q,
                            &EvalOptions {
                                strategy: Some(strategy),
                                mode: Some(mode),
                                ..EvalOptions::default()
                            },
                        )
                        .expect("pg-like profile has no statement limit")
                };
                let batched = run(ExecMode::Batched);
                let row = run(ExecMode::Row);
                let mut b = batched.rows.clone();
                let mut r = row.rows.clone();
                b.sort();
                r.sort();
                prop_assert_eq!(&b, &r, "rows drifted: {:?}/{:?}", layout, strategy);
                let (mb, mr) = (&batched.metrics, &row.metrics);
                let ctx = format!("{layout:?}/{strategy:?}");
                prop_assert!(
                    (mb.scanned - mr.scanned).abs() < 1e-9,
                    "scanned drifted: {} ({} vs {})", ctx, mb.scanned, mr.scanned
                );
                prop_assert_eq!(mb.index_probes, mr.index_probes, "index_probes: {}", &ctx);
                prop_assert_eq!(mb.hash_build, mr.hash_build, "hash_build: {}", &ctx);
                prop_assert_eq!(mb.hash_probe, mr.hash_probe, "hash_probe: {}", &ctx);
                prop_assert_eq!(mb.join_build, mr.join_build, "join_build: {}", &ctx);
                prop_assert_eq!(mb.join_probe, mr.join_probe, "join_probe: {}", &ctx);
                prop_assert_eq!(mb.materialized, mr.materialized, "materialized: {}", &ctx);
                prop_assert_eq!(mb.output, mr.output, "output: {}", &ctx);
            }
        }
    }

    /// The USCQ factorization of any reformulation stays equivalent.
    #[test]
    fn uscq_factorization_preserves_answers(seed in 0u64..5_000, atoms in 1usize..3) {
        let (_voc, tbox, abox, cq) = fixture(seed, atoms);
        let ucq = perfect_ref(&cq, &tbox);
        let uscq = obda::reform::factorize_ucq(&ucq);
        let a1 = eval_over_abox(&abox, &FolQuery::Ucq(ucq));
        let a2 = eval_over_abox(&abox, &FolQuery::Uscq(uscq));
        prop_assert_eq!(a1, a2);
    }

    /// Minimization preserves answers.
    #[test]
    fn minimization_preserves_answers(seed in 0u64..5_000, atoms in 1usize..3) {
        let (_voc, tbox, abox, cq) = fixture(seed, atoms);
        let ucq = perfect_ref(&cq, &tbox);
        let minimal = obda::query::minimize_ucq(&ucq);
        prop_assert!(minimal.len() <= ucq.len());
        let a1 = eval_over_abox(&abox, &FolQuery::Ucq(ucq));
        let a2 = eval_over_abox(&abox, &FolQuery::Ucq(minimal));
        prop_assert_eq!(a1, a2);
    }
}
