//! The serving-layer stress suite: many client threads replaying a mixed
//! LUBM workload against one shared [`Server`], snapshot isolation across
//! concurrent reloads, and the metering invariant under parallel
//! union-arm execution. CI runs this file in release mode with 8 worker
//! threads (the `threaded-stress` job) so data races and merge-order
//! nondeterminism fail there rather than in a bench run.

use obda::core::root_cover;
use obda::dllite::Dependencies;
use obda::prelude::*;
use obda::rdbms::testkit::{assert_arm_metrics_sum, assert_same_execution};
use obda::rdbms::EvalOptions;

/// Client threads for the replay tests (CI's stress job sets 8).
fn client_threads() -> usize {
    std::env::var("OBDA_STRESS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

struct Fixture {
    onto: UnivOntology,
    abox: ABox,
    queries: Vec<(String, CQ)>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: std::sync::OnceLock<Fixture> = std::sync::OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut onto = UnivOntology::build();
        let config = GenConfig {
            target_facts: 800,
            ..Default::default()
        };
        let (abox, _) = generate(&mut onto, &config);
        let mut queries: Vec<(String, CQ)> = workload(&onto)
            .into_iter()
            .map(|w| (w.name, w.cq))
            .collect();
        queries.push(("A4".to_owned(), star_query(&onto, 4)));
        // The *cold* compile of a few workload queries costs tens of
        // seconds in the unoptimized dev profile (reformulation
        // dominates — the very cost the plan cache amortizes). The
        // quick tier-1 run replays the cheap shapes; CI's release-mode
        // stress job sets OBDA_STRESS_FULL=1 to sweep all of them.
        if std::env::var("OBDA_STRESS_FULL").is_err() {
            let heavy = ["Q4", "Q7", "Q10", "Q13"];
            queries.retain(|(name, _)| !heavy.contains(&name.as_str()));
        }
        Fixture {
            onto,
            abox,
            queries,
        }
    })
}

fn server_config(cache: bool, threads: usize) -> ServerConfig {
    ServerConfig {
        // Root-cover JUCQ keeps the per-miss pipeline deterministic and
        // cheap enough for the dev-profile tier-1 run; the QPS bench
        // exercises the GDL strategy.
        reform_strategy: obda::core::Strategy::CrootJucq,
        cache_plans: cache,
        threads,
        ..ServerConfig::default()
    }
}

/// Mixed LUBM replay: N client threads × R rounds over 14 query shapes
/// against one warm server with intra-query parallelism. Every response
/// must be row-identical to the cold single-threaded pipeline, and after
/// the first round every compilation must come from the plan cache.
#[test]
fn threaded_lubm_replay_is_consistent() {
    let fx = fixture();
    let cold = Server::new(
        fx.onto.voc.clone(),
        fx.onto.tbox.clone(),
        &fx.abox,
        server_config(false, 1),
    );
    let expected: Vec<(String, Vec<Vec<u32>>)> = fx
        .queries
        .iter()
        .map(|(name, cq)| {
            let mut rows = cold.query(cq).expect("pg-like: no limit").outcome.rows;
            rows.sort();
            (name.clone(), rows)
        })
        .collect();

    let srv = Server::new(
        fx.onto.voc.clone(),
        fx.onto.tbox.clone(),
        &fx.abox,
        server_config(true, 2),
    );
    // Prime once so the replay measures the steady state.
    for (_, cq) in &fx.queries {
        srv.query(cq).unwrap();
    }
    let clients = client_threads();
    let rounds = 3usize;
    std::thread::scope(|s| {
        for c in 0..clients {
            let srv = &srv;
            let fx = &*fx;
            let expected = &expected;
            s.spawn(move || {
                for r in 0..rounds {
                    // Each client walks the workload at a different phase
                    // so distinct query shapes are in flight at once.
                    for k in 0..fx.queries.len() {
                        let i = (k + c + r) % fx.queries.len();
                        let (name, cq) = &fx.queries[i];
                        let out = srv.query(cq).unwrap();
                        assert!(out.cache_hit, "{name}: must be cached after priming");
                        let mut rows = out.outcome.rows;
                        rows.sort();
                        assert_eq!(rows, expected[i].1, "{name}: client {c} round {r}");
                    }
                }
            });
        }
    });
    let stats = srv.cache_stats();
    assert_eq!(stats.misses, fx.queries.len() as u64, "one miss per shape");
    assert_eq!(
        stats.hits,
        (clients * rounds * fx.queries.len()) as u64,
        "every replayed call must hit"
    );
}

/// Snapshot isolation: clients querying while the ABox is reloaded must
/// each see a *consistent* generation — rows matching either the old or
/// the new KB exactly, never a mixture, and never a stale plan on the
/// new generation.
#[test]
fn reload_during_replay_is_snapshot_isolated() {
    let fx = fixture();
    let (_, q2) = fx
        .queries
        .iter()
        .find(|(n, _)| n == "Q2")
        .expect("workload has Q2");

    // The mutated KB: duplicate the ABox and add a fresh advised student.
    let mut voc2 = fx.onto.voc.clone();
    let grad = voc2.find_concept("GraduateStudent").unwrap();
    let prof = voc2.find_concept("Professor").unwrap();
    let advisor = voc2.find_role("advisor").unwrap();
    let works_for = voc2.find_role("worksFor").unwrap();
    let stu = voc2.individual("stress-student");
    let adv = voc2.individual("stress-professor");
    let dept = voc2.individual("stress-department");
    let mut abox2 = fx.abox.clone();
    abox2.assert_concept(grad, stu);
    abox2.assert_concept(prof, adv);
    abox2.assert_role(advisor, stu, adv);
    abox2.assert_role(works_for, adv, dept);

    let srv = Server::new(
        voc2.clone(),
        fx.onto.tbox.clone(),
        &fx.abox,
        server_config(true, 1),
    );
    let mut want_old = srv.query(q2).unwrap().outcome.rows;
    want_old.sort();
    let cold_new = Server::new(
        voc2.clone(),
        fx.onto.tbox.clone(),
        &abox2,
        server_config(false, 1),
    );
    let mut want_new = cold_new.query(q2).unwrap().outcome.rows;
    want_new.sort();
    assert_ne!(want_old, want_new, "the mutation must be observable");

    std::thread::scope(|s| {
        for _ in 0..client_threads() {
            let srv = &srv;
            let (want_old, want_new) = (&want_old, &want_new);
            s.spawn(move || {
                for _ in 0..20 {
                    let out = srv.query(q2).unwrap();
                    let gen = out.generation;
                    let mut rows = out.outcome.rows;
                    rows.sort();
                    let want = if gen == 0 { want_old } else { want_new };
                    assert_eq!(&rows, want, "generation {gen} must be self-consistent");
                }
            });
        }
        // Publish the mutation midway through the replay storm.
        srv.reload_abox(&abox2).expect("reload commits");
    });

    // Steady state after the reload: new rows, generation 1, cache warm.
    let after = srv.query(q2).unwrap();
    assert_eq!(after.generation, 1);
    let mut rows = after.outcome.rows;
    rows.sort();
    assert_eq!(rows, want_new);
    assert!(srv.cache_stats().invalidated >= 1, "stale entries dropped");
}

/// The arm-metrics invariant under parallel execution, on real LUBM
/// UCQ reformulations: per-arm deltas sum to statement totals, and
/// parallel totals equal sequential totals counter-for-counter under the
/// discount-free pg-like profile.
#[test]
fn parallel_arm_metrics_match_sequential_on_lubm() {
    let fx = fixture();
    let engine = Engine::load(
        &fx.abox,
        &fx.onto.voc,
        LayoutKind::Simple,
        EngineProfile::pg_like(),
    );
    let deps = Dependencies::compute(&fx.onto.voc, &fx.onto.tbox);
    let mut multi_arm = 0;
    for (name, cq) in &fx.queries {
        let ucq = perfect_ref(cq, &fx.onto.tbox);
        if ucq.is_empty() {
            continue;
        }
        if ucq.len() > 1 {
            multi_arm += 1;
        }
        let q = FolQuery::Ucq(ucq);
        let seq = engine.evaluate(&q).unwrap();
        let par = engine
            .evaluate_opts(
                &q,
                &EvalOptions {
                    threads: 4,
                    ..EvalOptions::default()
                },
            )
            .unwrap();
        assert_arm_metrics_sum(&q, &par, name);
        assert_same_execution(&seq, &par, &format!("{name}: sequential vs 4 threads"));

        // The root-cover JUCQ path (component fan-out) must agree too.
        let analysis = obda::core::QueryAnalysis::new(cq, &deps);
        let croot = root_cover(&analysis);
        let jucq = cover_reformulation(cq, &fx.onto.tbox, &croot.to_specs());
        let jq = FolQuery::Jucq(jucq);
        let jseq = engine.evaluate(&jq).unwrap();
        let jpar = engine
            .evaluate_opts(
                &jq,
                &EvalOptions {
                    threads: 4,
                    ..EvalOptions::default()
                },
            )
            .unwrap();
        assert_same_execution(
            &jseq,
            &jpar,
            &format!("{name}: JUCQ sequential vs 4 threads"),
        );
        assert!(
            jpar.arm_metrics.is_empty(),
            "{name}: component work belongs to no arm"
        );
    }
    assert!(multi_arm >= 5, "the workload must exercise real unions");
}

/// The metrics registry under contention: relaxed atomics may reorder,
/// but counters must never *lose* increments. Hammer a bare registry
/// from 8 threads, then replay the workload from 8 clients against one
/// server, and check both against exact expected totals.
#[test]
fn metrics_registry_counts_exactly_under_contention() {
    use obda::rdbms::MetricsRegistry;
    use std::time::Duration;

    // Bare registry: 8 threads × 10_000 record calls each.
    let reg = MetricsRegistry::new();
    let threads = 8usize;
    let per_thread = 10_000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let reg = &reg;
            s.spawn(move || {
                for i in 0..per_thread {
                    let backend = if (t as u64 + i) % 2 == 0 {
                        Backend::Native
                    } else {
                        Backend::Sql
                    };
                    reg.record_query(backend, Duration::from_micros(i % 500), 3);
                    reg.record_wal_append(10, false);
                    reg.record_admission();
                }
            });
        }
    });
    let total = threads as u64 * per_thread;
    assert_eq!(
        reg.queries_total(Backend::Native) + reg.queries_total(Backend::Sql),
        total
    );
    assert_eq!(reg.rows_returned_total(), total * 3);
    assert_eq!(reg.wal_appends_total(), total);
    assert_eq!(reg.wal_bytes_total(), total * 10);
    assert_eq!(reg.connections_admitted_total(), total);
    // The histograms saw every observation exactly once.
    assert_eq!(
        reg.latency(Backend::Native).count() + reg.latency(Backend::Sql).count(),
        total
    );

    // Server replay: every query one thread issues lands in the served
    // counters exactly once — no lost updates, no double counting.
    let fx = fixture();
    let srv = Server::new(
        fx.onto.voc.clone(),
        fx.onto.tbox.clone(),
        &fx.abox,
        server_config(true, 1),
    );
    let mut primed_rows = 0u64;
    for (_, cq) in &fx.queries {
        primed_rows += srv.query(cq).unwrap().outcome.rows.len() as u64;
    }
    let primed = srv.observe().queries_total(Backend::Native);
    assert_eq!(
        primed,
        fx.queries.len() as u64,
        "one served query per prime"
    );
    let clients = 8usize;
    let rounds = 2usize;
    let rows_served = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for c in 0..clients {
            let srv = &srv;
            let fx = &*fx;
            let rows_served = &rows_served;
            s.spawn(move || {
                for r in 0..rounds {
                    for k in 0..fx.queries.len() {
                        let (_, cq) = &fx.queries[(k + c + r) % fx.queries.len()];
                        let out = srv.query(cq).unwrap();
                        rows_served.fetch_add(
                            out.outcome.rows.len() as u64,
                            std::sync::atomic::Ordering::Relaxed,
                        );
                    }
                }
            });
        }
    });
    let replayed = (clients * rounds * fx.queries.len()) as u64;
    let observe = srv.observe();
    assert_eq!(
        observe.queries_total(Backend::Native),
        primed + replayed,
        "served-query counter must match the exact number of calls"
    );
    assert_eq!(
        observe.latency(Backend::Native).count(),
        primed + replayed,
        "latency histogram must see every served query"
    );
    assert_eq!(
        observe.rows_returned_total(),
        primed_rows + rows_served.load(std::sync::atomic::Ordering::Relaxed),
        "row counter must equal the rows actually returned"
    );
}
