//! Integration tests encoding the paper's running examples end to end,
//! across all workspace layers (parser → reasoning → reformulation →
//! covers → engine).

use obda::core::{is_safe, root_cover, QueryAnalysis};
use obda::dllite::{Dependencies, TBoxClosure};
use obda::prelude::*;
use obda::query::minimize_ucq;
use obda::reform::cover_reformulation;

const EXAMPLE1_KB: &str = r#"
PhDStudent <= Researcher                     # (T1)
exists worksWith <= Researcher               # (T2)
exists worksWith- <= Researcher              # (T3)
role worksWith <= worksWith-                 # (T4)
role supervisedBy <= worksWith               # (T5)
exists supervisedBy <= PhDStudent            # (T6)
PhDStudent <= not exists supervisedBy-       # (T7)
worksWith(Ioana, Francois)                   # (A1)
supervisedBy(Damian, Ioana)                  # (A2)
supervisedBy(Damian, Francois)               # (A3)
"#;

fn example1() -> KnowledgeBase {
    KnowledgeBase::parse(EXAMPLE1_KB).expect("valid document")
}

fn example3_query(kb: &KnowledgeBase) -> CQ {
    let phd = kb.voc().find_concept("PhDStudent").unwrap();
    let works = kb.voc().find_role("worksWith").unwrap();
    CQ::with_var_head(
        vec![VarId(0)],
        vec![
            Atom::Concept(phd, Term::Var(VarId(0))),
            Atom::Role(works, Term::Var(VarId(1)), Term::Var(VarId(0))),
        ],
    )
}

/// Example 2: entailments of the Example-1 KB.
#[test]
fn example2_entailments() {
    let kb = example1();
    let closure = TBoxClosure::compute(kb.tbox());
    let sup = kb.voc().find_role("supervisedBy").unwrap();
    // K |= ∃supervisedBy ⊑ ¬∃supervisedBy⁻.
    assert!(closure.entails_concept_disjointness(
        BasicConcept::Exists(Role::direct(sup)),
        BasicConcept::Exists(Role::inv(sup)),
    ));
    // Assertion entailments via the chase.
    let inst = kb.chase(3);
    let works = kb.voc().find_role("worksWith").unwrap();
    let phd = kb.voc().find_concept("PhDStudent").unwrap();
    let francois = kb.voc().find_individual("Francois").unwrap();
    let ioana = kb.voc().find_individual("Ioana").unwrap();
    let damian = kb.voc().find_individual("Damian").unwrap();
    use obda::dllite::{ChaseFact, ChaseTerm};
    assert!(inst.contains(&ChaseFact::Role(
        works,
        ChaseTerm::Const(francois),
        ChaseTerm::Const(ioana)
    )));
    assert!(inst.contains(&ChaseFact::Concept(phd, ChaseTerm::Const(damian))));
    assert!(inst.contains(&ChaseFact::Role(
        works,
        ChaseTerm::Const(francois),
        ChaseTerm::Const(damian)
    )));
    // And the KB is consistent.
    assert!(kb.is_consistent());
}

/// Example 3 + Example 4 + §2.3: query answering through reformulation,
/// via the engine, on every layout and profile.
#[test]
fn example34_reformulation_through_every_engine() {
    let kb = example1();
    let q = example3_query(&kb);
    let damian = kb.voc().find_individual("Damian").unwrap();

    // Certain answers: {Damian}.
    let truth = certain_answers(kb.tbox(), kb.abox(), &q);
    assert_eq!(truth, std::collections::HashSet::from([vec![damian]]));

    // Table 5: ten union terms; minimal form: four.
    let ucq = perfect_ref(&q, kb.tbox());
    assert_eq!(ucq.len(), 10);
    let minimal = minimize_ucq(&ucq);
    assert_eq!(minimal.len(), 4);

    for layout in [LayoutKind::Simple, LayoutKind::Triple, LayoutKind::Dph] {
        for profile in [EngineProfile::pg_like(), EngineProfile::db2_like()] {
            let engine = Engine::load(kb.abox(), kb.voc(), layout, profile);
            let out = engine
                .evaluate(&FolQuery::Ucq(minimal.clone()))
                .expect("small statement");
            assert_eq!(out.rows, vec![vec![damian.0]], "layout {layout:?}");
        }
    }
}

/// Examples 7–11: unsafe cover loses answers; root cover and generalized
/// cover are correct — evaluated through the engine, not just the
/// reference evaluator.
#[test]
fn examples7_to_11_covers_through_engine() {
    let kb = KnowledgeBase::parse(
        "Graduate <= exists supervisedBy\nrole supervisedBy <= worksWith\n\
         PhDStudent(Damian)\nGraduate(Damian)",
    )
    .unwrap();
    let phd = kb.voc().find_concept("PhDStudent").unwrap();
    let works = kb.voc().find_role("worksWith").unwrap();
    let sup = kb.voc().find_role("supervisedBy").unwrap();
    let q = CQ::with_var_head(
        vec![VarId(0)],
        vec![
            Atom::Concept(phd, Term::Var(VarId(0))),
            Atom::Role(works, Term::Var(VarId(0)), Term::Var(VarId(1))),
            Atom::Role(sup, Term::Var(VarId(2)), Term::Var(VarId(1))),
        ],
    );
    let deps = Dependencies::compute(kb.voc(), kb.tbox());
    let analysis = QueryAnalysis::new(&q, &deps);
    let engine = Engine::load(
        kb.abox(),
        kb.voc(),
        LayoutKind::Simple,
        EngineProfile::pg_like(),
    );
    let damian = kb.voc().find_individual("Damian").unwrap();

    // Unsafe C1 (Example 7).
    let c1 = Cover::new(vec![Fragment::simple(0b011), Fragment::simple(0b100)]);
    assert!(!is_safe(&analysis, &c1));
    let jucq = cover_reformulation(&q, kb.tbox(), &c1.to_specs());
    assert!(engine
        .evaluate(&FolQuery::Jucq(jucq))
        .unwrap()
        .rows
        .is_empty());

    // Root cover C2 (Examples 9/10).
    let croot = root_cover(&analysis);
    assert_eq!(croot.num_fragments(), 2);
    let jucq = cover_reformulation(&q, kb.tbox(), &croot.to_specs());
    assert_eq!(
        engine.evaluate(&FolQuery::Jucq(jucq)).unwrap().rows,
        vec![vec![damian.0]]
    );

    // Generalized cover C3 (Example 11).
    let c3 = Cover::new(vec![
        Fragment::generalized(0b110, 0b110),
        Fragment::generalized(0b011, 0b001),
    ]);
    let jucq = cover_reformulation(&q, kb.tbox(), &c3.to_specs());
    assert_eq!(
        engine.evaluate(&FolQuery::Jucq(jucq)).unwrap().rows,
        vec![vec![damian.0]]
    );
}

/// Golden plans for the paper's worked examples: `explain_plan` pins the
/// slot order, the chosen physical operator, and the per-step cost/row
/// estimates, so any planner or cost-model drift is visible in review.
/// (The engine guarantees the printed plan is the plan that runs —
/// executor and explain share `plan_conjunction`.)
#[test]
fn golden_explain_plans_for_example3() {
    use obda::rdbms::JoinStrategy;
    let kb = example1();
    let q = example3_query(&kb);
    let minimal = minimize_ucq(&perfect_ref(&q, kb.tbox()));
    assert_eq!(minimal.len(), 4);

    // Cost-chosen (the default): on this 3-fact ABox every bound step is
    // a cheap INL probe; no hash join pays off.
    let engine = Engine::load(
        kb.abox(),
        kb.voc(),
        LayoutKind::Simple,
        EngineProfile::pg_like(),
    );
    let plan = engine.explain_plan(&FolQuery::Ucq(minimal.clone()));
    assert_eq!(
        plan.to_string(),
        "strategy=cost-chosen cost=5.0\n\
         arm0: [slot0 scan cost=2.0 rows=2.0]\n\
         arm1: [slot0 scan cost=0.0 rows=0.0] [slot1 inl cost=0.0 rows=0.0]\n\
         arm2: [slot0 scan cost=0.0 rows=0.0] [slot1 inl cost=0.0 rows=0.0]\n\
         arm3: [slot0 scan cost=0.0 rows=0.0] [slot1 inl cost=0.0 rows=0.0]\n",
        "cost-chosen golden plan drifted"
    );

    // Forced-hash: the same slot order, but every keyed step becomes a
    // hash build/probe — spelled `vhash` under the default vectorized
    // pipeline, priced identically to the row-mode `hash`.
    let engine = Engine::load(
        kb.abox(),
        kb.voc(),
        LayoutKind::Simple,
        EngineProfile::pg_like(),
    )
    .with_join_strategy(JoinStrategy::ForcedHash);
    let plan = engine.explain_plan(&FolQuery::Ucq(minimal));
    assert_eq!(
        plan.to_string(),
        "strategy=forced-hash cost=15.0\n\
         arm0: [slot0 scan cost=2.0 rows=2.0]\n\
         arm1: [slot0 scan cost=0.0 rows=0.0] [slot1 vhash cost=2.5 rows=0.0]\n\
         arm2: [slot0 scan cost=0.0 rows=0.0] [slot1 vhash cost=2.5 rows=0.0]\n\
         arm3: [slot0 scan cost=0.0 rows=0.0] [slot1 vhash cost=5.0 rows=0.0]\n",
        "forced-hash golden plan drifted"
    );
}

/// Golden plan for the Example-7/9 root-cover JUCQ: component arms are
/// planned independently; the scalar cost prices the whole statement.
#[test]
fn golden_explain_plan_for_example9_root_cover() {
    let kb = KnowledgeBase::parse(
        "Graduate <= exists supervisedBy\nrole supervisedBy <= worksWith\n\
         PhDStudent(Damian)\nGraduate(Damian)",
    )
    .unwrap();
    let phd = kb.voc().find_concept("PhDStudent").unwrap();
    let works = kb.voc().find_role("worksWith").unwrap();
    let sup = kb.voc().find_role("supervisedBy").unwrap();
    let q = CQ::with_var_head(
        vec![VarId(0)],
        vec![
            Atom::Concept(phd, Term::Var(VarId(0))),
            Atom::Role(works, Term::Var(VarId(0)), Term::Var(VarId(1))),
            Atom::Role(sup, Term::Var(VarId(2)), Term::Var(VarId(1))),
        ],
    );
    let deps = Dependencies::compute(kb.voc(), kb.tbox());
    let analysis = QueryAnalysis::new(&q, &deps);
    let croot = root_cover(&analysis);
    let jucq = cover_reformulation(&q, kb.tbox(), &croot.to_specs());
    let engine = Engine::load(
        kb.abox(),
        kb.voc(),
        LayoutKind::Simple,
        EngineProfile::pg_like(),
    );
    let plan = engine.explain_plan(&FolQuery::Jucq(jucq));
    assert_eq!(
        plan.to_string(),
        "strategy=cost-chosen cost=17.0\n\
         c0.arm0: [slot0 scan cost=1.0 rows=1.0]\n\
         c1.arm0: [slot0 scan cost=0.0 rows=0.0] [slot1 vhash cost=0.0 rows=0.0]\n\
         c1.arm1: [slot0 scan cost=0.0 rows=0.0] [slot1 vhash cost=0.0 rows=0.0]\n\
         c1.arm2: [slot0 scan cost=0.0 rows=0.0]\n\
         c1.arm3: [slot0 scan cost=1.0 rows=1.0]\n",
        "root-cover golden plan drifted"
    );
}

/// The Example-1 KB becomes inconsistent when a PhD student supervises —
/// checked through both the chase and reformulation routes.
#[test]
fn example1_inconsistency_injection() {
    let kb = KnowledgeBase::parse(&format!("{EXAMPLE1_KB}\nsupervisedBy(Alice, Damian)")).unwrap();
    assert!(!kb.is_consistent());
    assert!(!obda::reform::is_consistent_by_reformulation(
        kb.tbox(),
        kb.abox()
    ));
    let violations = kb.consistency_violations();
    assert_eq!(violations.len(), 1);
}
