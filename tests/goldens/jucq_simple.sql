WITH sql0 AS (
SELECT DISTINCT t0.x AS h0 FROM c_PhDStudent t0
UNION
SELECT DISTINCT t0.x AS h0 FROM c_Researcher t0
), sql1 AS (
SELECT DISTINCT t0.s AS h0 FROM r_worksWith t0
)
SELECT DISTINCT sql0.h0 FROM sql0, sql1 WHERE sql1.h0 = sql0.h0