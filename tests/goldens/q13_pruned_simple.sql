SELECT DISTINCT t0.s AS h0 FROM r_headOf t0, r_subOrganizationOf t1, r_undergraduateDegreeFrom t2 WHERE t1.s = t0.o AND t2.s = t0.s AND t2.o = t1.o
UNION
SELECT DISTINCT t0.s AS h0 FROM r_headOf t0, r_subOrganizationOf t1, r_doctoralDegreeFrom t2 WHERE t1.s = t0.o AND t2.s = t0.s AND t2.o = t1.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_Professor t0, r_memberOf t1, c_Department t2, r_subOrganizationOf t3, r_undergraduateDegreeFrom t4 WHERE t1.s = t0.x AND t2.x = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_FullProfessor t0, r_memberOf t1, c_Department t2, r_subOrganizationOf t3, r_undergraduateDegreeFrom t4 WHERE t1.s = t0.x AND t2.x = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_AssociateProfessor t0, r_memberOf t1, c_Department t2, r_subOrganizationOf t3, r_undergraduateDegreeFrom t4 WHERE t1.s = t0.x AND t2.x = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_AssistantProfessor t0, r_memberOf t1, c_Department t2, r_subOrganizationOf t3, r_undergraduateDegreeFrom t4 WHERE t1.s = t0.x AND t2.x = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_Chair t0, r_memberOf t1, c_Department t2, r_subOrganizationOf t3, r_undergraduateDegreeFrom t4 WHERE t1.s = t0.x AND t2.x = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.o AS h0 FROM r_advisor t0, r_memberOf t1, c_Department t2, r_subOrganizationOf t3, r_undergraduateDegreeFrom t4 WHERE t1.s = t0.o AND t2.x = t1.o AND t3.s = t1.o AND t4.s = t0.o AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_Professor t0, r_worksFor t1, c_Department t2, r_subOrganizationOf t3, r_undergraduateDegreeFrom t4 WHERE t1.s = t0.x AND t2.x = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_Professor t0, r_affiliatedWith t1, c_Department t2, r_subOrganizationOf t3, r_undergraduateDegreeFrom t4 WHERE t1.s = t0.x AND t2.x = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_FullProfessor t0, r_affiliatedWith t1, r_headOf t2, r_subOrganizationOf t3, r_undergraduateDegreeFrom t4 WHERE t1.s = t0.x AND t2.o = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_AssociateProfessor t0, r_affiliatedWith t1, r_headOf t2, r_subOrganizationOf t3, r_undergraduateDegreeFrom t4 WHERE t1.s = t0.x AND t2.o = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_AssistantProfessor t0, r_affiliatedWith t1, r_headOf t2, r_subOrganizationOf t3, r_undergraduateDegreeFrom t4 WHERE t1.s = t0.x AND t2.o = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_Chair t0, r_affiliatedWith t1, r_headOf t2, r_subOrganizationOf t3, r_undergraduateDegreeFrom t4 WHERE t1.s = t0.x AND t2.o = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.o AS h0 FROM r_advisor t0, r_affiliatedWith t1, r_headOf t2, r_subOrganizationOf t3, r_undergraduateDegreeFrom t4 WHERE t1.s = t0.o AND t2.o = t1.o AND t3.s = t1.o AND t4.s = t0.o AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_FullProfessor t0, r_worksFor t1, r_headOf t2, r_subOrganizationOf t3, r_undergraduateDegreeFrom t4 WHERE t1.s = t0.x AND t2.o = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_AssociateProfessor t0, r_worksFor t1, r_headOf t2, r_subOrganizationOf t3, r_undergraduateDegreeFrom t4 WHERE t1.s = t0.x AND t2.o = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_AssistantProfessor t0, r_worksFor t1, r_headOf t2, r_subOrganizationOf t3, r_undergraduateDegreeFrom t4 WHERE t1.s = t0.x AND t2.o = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_Chair t0, r_worksFor t1, r_headOf t2, r_subOrganizationOf t3, r_undergraduateDegreeFrom t4 WHERE t1.s = t0.x AND t2.o = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.o AS h0 FROM r_advisor t0, r_worksFor t1, r_headOf t2, r_subOrganizationOf t3, r_undergraduateDegreeFrom t4 WHERE t1.s = t0.o AND t2.o = t1.o AND t3.s = t1.o AND t4.s = t0.o AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_Professor t0, r_memberOf t1, c_Department t2, r_subOrganizationOf t3, r_doctoralDegreeFrom t4 WHERE t1.s = t0.x AND t2.x = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_FullProfessor t0, r_memberOf t1, c_Department t2, r_subOrganizationOf t3, r_doctoralDegreeFrom t4 WHERE t1.s = t0.x AND t2.x = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_AssociateProfessor t0, r_memberOf t1, c_Department t2, r_subOrganizationOf t3, r_doctoralDegreeFrom t4 WHERE t1.s = t0.x AND t2.x = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_AssistantProfessor t0, r_memberOf t1, c_Department t2, r_subOrganizationOf t3, r_doctoralDegreeFrom t4 WHERE t1.s = t0.x AND t2.x = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_Chair t0, r_memberOf t1, c_Department t2, r_subOrganizationOf t3, r_doctoralDegreeFrom t4 WHERE t1.s = t0.x AND t2.x = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.o AS h0 FROM r_advisor t0, r_memberOf t1, c_Department t2, r_subOrganizationOf t3, r_doctoralDegreeFrom t4 WHERE t1.s = t0.o AND t2.x = t1.o AND t3.s = t1.o AND t4.s = t0.o AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_Professor t0, r_worksFor t1, c_Department t2, r_subOrganizationOf t3, r_doctoralDegreeFrom t4 WHERE t1.s = t0.x AND t2.x = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_Professor t0, r_affiliatedWith t1, c_Department t2, r_subOrganizationOf t3, r_doctoralDegreeFrom t4 WHERE t1.s = t0.x AND t2.x = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_FullProfessor t0, r_affiliatedWith t1, r_headOf t2, r_subOrganizationOf t3, r_doctoralDegreeFrom t4 WHERE t1.s = t0.x AND t2.o = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_AssociateProfessor t0, r_affiliatedWith t1, r_headOf t2, r_subOrganizationOf t3, r_doctoralDegreeFrom t4 WHERE t1.s = t0.x AND t2.o = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_AssistantProfessor t0, r_affiliatedWith t1, r_headOf t2, r_subOrganizationOf t3, r_doctoralDegreeFrom t4 WHERE t1.s = t0.x AND t2.o = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_Chair t0, r_affiliatedWith t1, r_headOf t2, r_subOrganizationOf t3, r_doctoralDegreeFrom t4 WHERE t1.s = t0.x AND t2.o = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.o AS h0 FROM r_advisor t0, r_affiliatedWith t1, r_headOf t2, r_subOrganizationOf t3, r_doctoralDegreeFrom t4 WHERE t1.s = t0.o AND t2.o = t1.o AND t3.s = t1.o AND t4.s = t0.o AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_FullProfessor t0, r_worksFor t1, r_headOf t2, r_subOrganizationOf t3, r_doctoralDegreeFrom t4 WHERE t1.s = t0.x AND t2.o = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_AssociateProfessor t0, r_worksFor t1, r_headOf t2, r_subOrganizationOf t3, r_doctoralDegreeFrom t4 WHERE t1.s = t0.x AND t2.o = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_AssistantProfessor t0, r_worksFor t1, r_headOf t2, r_subOrganizationOf t3, r_doctoralDegreeFrom t4 WHERE t1.s = t0.x AND t2.o = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.x AS h0 FROM c_Chair t0, r_worksFor t1, r_headOf t2, r_subOrganizationOf t3, r_doctoralDegreeFrom t4 WHERE t1.s = t0.x AND t2.o = t1.o AND t3.s = t1.o AND t4.s = t0.x AND t4.o = t3.o
UNION
SELECT DISTINCT t0.o AS h0 FROM r_advisor t0, r_worksFor t1, r_headOf t2, r_subOrganizationOf t3, r_doctoralDegreeFrom t4 WHERE t1.s = t0.o AND t2.o = t1.o AND t3.s = t1.o AND t4.s = t0.o AND t4.o = t3.o