//! The constraints suite: ABox completeness constraints (Hovland et
//! al., arXiv 1605.04263) mined per snapshot and used to prune UCQ /
//! JUCQ reformulations *before* SQL generation.
//!
//! The acceptance story is §6.3's failure mode run backwards: on the
//! DPH layout under the DB2-like statement-size limit, workload queries
//! whose naive reformulations are rejected as "statement too long"
//! become *answerable* once provably-empty and data-subsumed union arms
//! are dropped — and the answers match the native reference exactly.
//!
//! Golden files pin the pruned artefacts (`tests/goldens/q13_pruned_*`,
//! `tests/goldens/q13_explain_*`):
//!
//! ```sh
//! OBDA_BLESS=1 cargo test --release --test constraints \
//!     && cargo test --release --test constraints
//! ```
//!
//! Cost note: Q13's reformulations (minimized PerfectRef, and PerfectRef
//! per root-cover fragment) take *minutes* to compute in unoptimized
//! builds — hundreds of union arms with quadratic containment pruning —
//! versus seconds in release. The suite computes each exactly once and
//! derives the pruned variant with [`prune_fol`] (the same call
//! `choose_reformulation_constrained` makes after strategy selection, so
//! the artefacts under test are the served ones), and the Q13-heavy
//! tests skip themselves in debug builds unless `OBDA_HEAVY` is set —
//! CI's differential job runs this suite in release, where they all run.

use std::path::PathBuf;
use std::sync::OnceLock;

use obda::core::{prune_fol, PruneStats};
use obda::dllite::Dependencies;
use obda::lubm::{UnivOntology, WorkloadQuery};
use obda::prelude::*;
use obda::query::minimize_ucq;
use obda::rdbms::pgwire::{PgConfig, PgListener, WireClient};
use obda::rdbms::testkit::differential_constraints_check;
use obda::rdbms::{EngineError, EvalOptions};

/// Q13's wire-language rendering (the 7-atom cyclic query; see
/// `obda_lubm::queries`): teaching professors with a degree from the
/// university their department belongs to.
const Q13_WIRE: &str = "SELECT ?x WHERE Professor(?x), memberOf(?x, ?y1), \
     Department(?y1), subOrganizationOf(?y1, ?y2), University(?y2), \
     degreeFrom(?x, ?y2), teacherOf(?x, ?y3)";

struct Fixture {
    onto: UnivOntology,
    abox: ABox,
    deps: Dependencies,
    cons: ConstraintSet,
    queries: Vec<WorkloadQuery>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut onto = UnivOntology::build();
        let (abox, _report) = generate(
            &mut onto,
            &GenConfig {
                target_facts: 800,
                ..Default::default()
            },
        );
        let deps = Dependencies::compute(&onto.voc, &onto.tbox);
        let cons = ConstraintSet::mine_from_abox(&onto.tbox, &abox);
        let queries = workload(&onto);
        Fixture {
            onto,
            abox,
            deps,
            cons,
            queries,
        }
    })
}

/// Q13's UCQ route (the exact `Strategy::Ucq` pipeline: minimized
/// PerfectRef, then constraint pruning), computed once and shared.
fn q13_ucq() -> &'static (FolQuery, FolQuery, PruneStats) {
    static UCQ: OnceLock<(FolQuery, FolQuery, PruneStats)> = OnceLock::new();
    UCQ.get_or_init(|| {
        let fx = fixture();
        let off = FolQuery::Ucq(minimize_ucq(&perfect_ref_pruned(
            fx.query("Q13"),
            &fx.onto.tbox,
        )));
        let (on, stats) = prune_fol(&off, &fx.cons);
        (off, on, stats)
    })
}

impl Fixture {
    fn query(&self, name: &str) -> &CQ {
        &self
            .queries
            .iter()
            .find(|w| w.name == name)
            .unwrap_or_else(|| panic!("workload has {name}"))
            .cq
    }

    fn engine(&self, layout: LayoutKind, profile: EngineProfile) -> Engine {
        Engine::load(&self.abox, &self.onto.voc, layout, profile)
    }

    /// The native reference rows for a reformulation: simple layout,
    /// no statement-size limit, sorted.
    fn reference(&self, fol: &FolQuery) -> Vec<Vec<u32>> {
        let mut rows = self
            .engine(LayoutKind::Simple, EngineProfile::pg_like())
            .evaluate(fol)
            .expect("the pg-like profile has no statement limit")
            .rows;
        rows.sort();
        rows
    }

    /// The root-cover JUCQ for a workload query, unpruned and pruned.
    fn croot(&self, name: &str) -> (FolQuery, FolQuery, PruneStats) {
        let off = choose_reformulation(
            self.query(name),
            &self.onto.tbox,
            &self.deps,
            &StructuralEstimator,
            &Strategy::CrootJucq,
        )
        .fol;
        let (on, stats) = prune_fol(&off, &self.cons);
        (off, on, stats)
    }
}

fn check_golden(name: &str, actual: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "goldens", name]
        .iter()
        .collect();
    if std::env::var_os("OBDA_BLESS").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden {name}; bless with OBDA_BLESS=1"));
    assert_eq!(
        actual, want,
        "pruned artefact drifted from tests/goldens/{name}; review the \
         pruning change and re-bless with OBDA_BLESS=1 if intended"
    );
}

/// Whether the Q13-heavy tests run: always in release, in debug only
/// with `OBDA_HEAVY=1` (see the module-doc cost note).
fn heavy() -> bool {
    !cfg!(debug_assertions) || std::env::var_os("OBDA_HEAVY").is_some()
}

macro_rules! skip_unless_heavy {
    () => {
        if !heavy() {
            eprintln!(
                "skipped: Q13 reformulation takes minutes unoptimized (OBDA_HEAVY=1 to force)"
            );
            return;
        }
    };
}

/// FNV-1a, for digesting statements too large to pin verbatim.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// mining
// ---------------------------------------------------------------------

/// The LUBM generator leaves many ontology predicates empty and many
/// specializations exactly covering their parents — the mined
/// constraint set must be substantial, and must hold on the data it
/// was mined from (the soundness precondition for every pruning step).
#[test]
fn mined_constraints_on_lubm_are_sound_and_substantial() {
    let fx = fixture();
    assert!(!fx.cons.is_empty(), "LUBM must yield constraints");
    assert!(
        fx.cons.holds_on(&fx.abox),
        "mined constraints must hold on the ABox they were mined from"
    );
    let stats = fx.cons.stats();
    assert!(stats.empty_preds > 0, "generator leaves predicates empty");
    assert!(
        stats.unary_inclusions > 0,
        "specializations must cover parents somewhere in LUBM"
    );
}

// ---------------------------------------------------------------------
// parity: pruning is invisible in the answers
// ---------------------------------------------------------------------

/// The full constraint-aware differential harness on Q4: both parity
/// strategies, all three layouts, both backends, constraints off vs on
/// — row-identical with the reference evaluator, never pruning an arm
/// the reference evaluator shows non-empty.
#[test]
fn q4_constraints_full_harness_parity() {
    let fx = fixture();
    let rows = differential_constraints_check(
        &fx.onto.voc,
        &fx.onto.tbox,
        &fx.abox,
        fx.query("Q4"),
        "LUBM Q4",
    );
    assert!(!rows.is_empty(), "the fixture must give Q4 answers");
}

/// Q13's UCQ route, constraints off vs on, across all three layouts
/// and both execution backends: every combination returns exactly the
/// native reference rows. (Q13's reformulation is shared through the
/// fixture — see the module doc — so this sweep asserts execution
/// parity on the exact pruned shape the server caches.)
#[test]
fn q13_ucq_parity_across_layouts_and_backends() {
    skip_unless_heavy!();
    let fx = fixture();
    let (off, on, stats) = q13_ucq();
    assert!(stats.kept >= 1, "pruning must never empty the union");
    assert!(stats.total_pruned() > 0, "Q13 must have prunable arms");
    let want = fx.reference(off);
    assert!(!want.is_empty(), "the fixture must give Q13 answers");

    for layout in [LayoutKind::Simple, LayoutKind::Triple, LayoutKind::Dph] {
        let native = fx.engine(layout, EngineProfile::pg_like());
        let sql = fx
            .engine(layout, EngineProfile::pg_like())
            .with_backend(Backend::Sql);
        for (setting, fol) in [("off", off), ("on", on)] {
            let mut rows = native.evaluate(fol).expect("native evaluates").rows;
            rows.sort();
            assert_eq!(
                rows, want,
                "{layout:?}/native constraints {setting}: rows must match reference"
            );
            let text = sql.sql_for(fol);
            let opts = EvalOptions {
                sql_text: Some(&text),
                sql_bytes: Some(text.len()),
                ..Default::default()
            };
            let mut rows = sql.evaluate_opts(fol, &opts).expect("sql evaluates").rows;
            rows.sort();
            assert_eq!(
                rows, want,
                "{layout:?}/sql constraints {setting}: rows must match reference"
            );
        }
    }
}

// ---------------------------------------------------------------------
// the §6.3 rescue: rejected statements become answerable
// ---------------------------------------------------------------------

/// Q10 on the DPH layout overflows the real DB2-like statement limit
/// under *both* reformulation strategies; with constraints the pruned
/// statement fits and returns exactly the native reference rows.
#[test]
fn q10_statement_too_long_becomes_answerable_on_dph() {
    let fx = fixture();
    let db2 = EngineProfile::db2_like();
    let limit = db2.max_statement_bytes.expect("DB2 profile has a limit");
    let engine = fx.engine(LayoutKind::Dph, db2).with_backend(Backend::Sql);
    let cq = fx.query("Q10");

    // Both strategy shapes, constructed once each (the pruned variant
    // derives from the unpruned one exactly as the constrained route
    // does).
    let ucq_off = FolQuery::Ucq(minimize_ucq(&perfect_ref_pruned(cq, &fx.onto.tbox)));
    let (croot_off, croot_on, _) = fx.croot("Q10");
    let (ucq_on, _) = prune_fol(&ucq_off, &fx.cons);

    for (strategy, off, on) in [
        ("Ucq", &ucq_off, &ucq_on),
        ("CrootJucq", &croot_off, &croot_on),
    ] {
        // Without constraints: the statement cannot run at all.
        let sql_off = engine.sql_for(off);
        assert!(
            sql_off.len() > limit,
            "{strategy}: Q10 DPH must overflow the DB2 limit unpruned \
             ({} <= {limit})",
            sql_off.len()
        );
        let opts = EvalOptions {
            sql_text: Some(&sql_off),
            sql_bytes: Some(sql_off.len()),
            ..Default::default()
        };
        match engine.evaluate_opts(off, &opts) {
            Err(EngineError::StatementTooLong { size, limit: l }) => {
                assert_eq!(size, sql_off.len());
                assert_eq!(l, limit);
            }
            Err(other) => panic!("{strategy}: expected StatementTooLong, got {other}"),
            Ok(_) => panic!("{strategy}: oversized statement must be rejected"),
        }

        // With constraints: it fits, runs, and matches the reference.
        let sql_on = engine.sql_for(on);
        assert!(
            sql_on.len() <= limit,
            "{strategy}: pruned Q10 DPH must fit ({} > {limit})",
            sql_on.len()
        );
        let opts = EvalOptions {
            sql_text: Some(&sql_on),
            sql_bytes: Some(sql_on.len()),
            ..Default::default()
        };
        let mut rows = engine
            .evaluate_opts(on, &opts)
            .expect("pruned statement fits the limit")
            .rows;
        rows.sort();
        assert_eq!(
            rows,
            fx.reference(off),
            "{strategy}: pruned Q10 answers must match the native reference"
        );
    }
}

/// Q13's root-cover JUCQ on DPH is ~1.4 MB at this fixture scale —
/// under the stock 2 MB DB2 limit, over the limit of any stricter
/// engine (at the paper's scale it reaches hundreds of megabytes).
/// Under a tightened profile the same rescue holds: rejected unpruned,
/// answered pruned, reference parity.
#[test]
fn q13_root_cover_answers_under_a_tightened_limit() {
    skip_unless_heavy!();
    let fx = fixture();
    let mut profile = EngineProfile::db2_like();
    let limit = 1_000_000;
    profile.max_statement_bytes = Some(limit);
    let engine = fx
        .engine(LayoutKind::Dph, profile)
        .with_backend(Backend::Sql);

    let (off, on, stats) = fx.croot("Q13");
    assert!(stats.total_pruned() > 0, "Q13 must have prunable arms");

    let sql_off = engine.sql_for(&off);
    assert!(
        sql_off.len() > limit,
        "unpruned root-cover Q13 must overflow"
    );
    let opts = EvalOptions {
        sql_text: Some(&sql_off),
        sql_bytes: Some(sql_off.len()),
        ..Default::default()
    };
    assert!(
        matches!(
            engine.evaluate_opts(&off, &opts),
            Err(EngineError::StatementTooLong { .. })
        ),
        "unpruned root-cover Q13 must be rejected"
    );

    let sql_on = engine.sql_for(&on);
    assert!(
        sql_on.len() <= limit,
        "pruned root-cover Q13 must fit ({} > {limit})",
        sql_on.len()
    );
    let opts = EvalOptions {
        sql_text: Some(&sql_on),
        sql_bytes: Some(sql_on.len()),
        ..Default::default()
    };
    let mut rows = engine
        .evaluate_opts(&on, &opts)
        .expect("pruned statement fits")
        .rows;
    rows.sort();
    assert_eq!(
        rows,
        fx.reference(&off),
        "pruned root-cover Q13 must return the reference rows"
    );
    assert!(!rows.is_empty(), "the fixture must give Q13 answers");
}

// ---------------------------------------------------------------------
// serving layer: the rescue end-to-end through Server, with metrics
// ---------------------------------------------------------------------

/// The same rescue through the serving layer: a DB2-profiled SQL-backend
/// server on the DPH layout rejects Q10 with constraints off and answers
/// it with constraints on — counting the pruned arms in the metrics
/// registry, and replaying the pruned plan from the cache.
#[test]
fn server_turns_q10_rejection_into_answers_and_counts_pruning() {
    let fx = fixture();
    let cq = fx.query("Q10");
    let config = |use_constraints| ServerConfig {
        layout: LayoutKind::Dph,
        profile: EngineProfile::db2_like(),
        backend: Backend::Sql,
        reform_strategy: Strategy::CrootJucq,
        use_constraints,
        ..ServerConfig::default()
    };

    let off = Server::new(
        fx.onto.voc.clone(),
        fx.onto.tbox.clone(),
        &fx.abox,
        config(false),
    );
    match off.query(cq) {
        Err(EngineError::StatementTooLong { .. }) => {}
        Err(other) => panic!("constraints off: expected StatementTooLong, got {other}"),
        Ok(outcome) => panic!(
            "constraints off: expected StatementTooLong, got {} rows",
            outcome.outcome.rows.len()
        ),
    }
    assert_eq!(
        off.observe().pruned_arms_total(),
        (0, 0),
        "constraints off must not count pruned arms"
    );

    let on = Server::new(
        fx.onto.voc.clone(),
        fx.onto.tbox.clone(),
        &fx.abox,
        config(true),
    );
    let (croot_off, _, _) = fx.croot("Q10");
    let reference = fx.reference(&croot_off);
    let miss = on.query(cq).expect("constraints on: Q10 must answer");
    assert!(!miss.cache_hit);
    let mut rows = miss.outcome.rows;
    rows.sort();
    assert_eq!(
        rows, reference,
        "server rows must match the native reference"
    );

    let (empty, subsumed) = on.observe().pruned_arms_total();
    assert!(
        empty + subsumed > 0,
        "the metrics registry must count pruned arms"
    );

    // The cached compilation *is* the pruned plan: the warm path replays
    // it without re-mining or re-pruning.
    let hit = on.query(cq).expect("warm Q10");
    assert!(hit.cache_hit, "second query must hit the plan cache");
    let mut rows = hit.outcome.rows;
    rows.sort();
    assert_eq!(rows, reference);
    assert_eq!(
        on.observe().pruned_arms_total(),
        (empty, subsumed),
        "a cache hit must not re-count pruned arms"
    );
}

// ---------------------------------------------------------------------
// goldens: the pruned artefacts are reviewed, not silent
// ---------------------------------------------------------------------

/// The pruned Q13 UCQ statement, pinned byte-for-byte on the simple and
/// triple layouts (and the snapshots double as `sqlexec` parser
/// conformance inputs). The DPH statement is far too large to review
/// verbatim — its golden pins a digest: byte count, FNV-1a hash, and
/// the arm counts before/after pruning.
#[test]
fn q13_pruned_sql_is_pinned_on_every_layout() {
    skip_unless_heavy!();
    let fx = fixture();
    let (_, on, stats) = q13_ucq();

    for (layout, file) in [
        (LayoutKind::Simple, "q13_pruned_simple.sql"),
        (LayoutKind::Triple, "q13_pruned_triple.sql"),
    ] {
        let sql = fx.engine(layout, EngineProfile::pg_like()).sql_for(on);
        check_golden(file, &sql);
        obda::rdbms::sqlexec::parse(&sql)
            .unwrap_or_else(|e| panic!("golden {file} no longer parses: {e}"));
    }

    let dph = fx
        .engine(LayoutKind::Dph, EngineProfile::pg_like())
        .sql_for(on);
    obda::rdbms::sqlexec::parse(&dph).expect("pruned DPH statement parses");
    let digest = format!(
        "bytes={}\nfnv1a64={:016x}\narms_in={}\narms_kept={}\n",
        dph.len(),
        fnv1a64(dph.as_bytes()),
        stats.arms_in,
        stats.kept,
    );
    check_golden("q13_pruned_dph.digest", &digest);
}

/// The pruned Q13 *plan*, pinned through the wire front end's
/// `EXPLAIN ANALYZE` on all three layouts (root-cover strategy — the
/// §6.3 headline shape). Wall-clock lines (`measured:` / `accuracy:`)
/// are stripped; what remains — strategy header, the `constraints:`
/// pruning summary, per-arm plan steps and predicted costs — is
/// deterministic for the fixed generator seed.
#[test]
fn q13_pruned_explain_plan_is_pinned_on_the_wire() {
    skip_unless_heavy!();
    let fx = fixture();
    for (layout, file) in [
        (LayoutKind::Simple, "q13_explain_simple.txt"),
        (LayoutKind::Triple, "q13_explain_triple.txt"),
        (LayoutKind::Dph, "q13_explain_dph.txt"),
    ] {
        let server = Server::new(
            fx.onto.voc.clone(),
            fx.onto.tbox.clone(),
            &fx.abox,
            ServerConfig {
                layout,
                reform_strategy: Strategy::CrootJucq,
                ..ServerConfig::default()
            },
        );
        let mut listener = PgListener::bind(
            "127.0.0.1:0",
            std::sync::Arc::new(server),
            PgConfig::default(),
        )
        .expect("bind ephemeral port");
        let mut client =
            WireClient::connect(&listener.local_addr(), &[]).expect("startup completes");
        let r = client
            .simple_query(&format!("EXPLAIN ANALYZE {Q13_WIRE}"))
            .expect("EXPLAIN ANALYZE answers");
        assert_eq!(r[0].columns, vec!["QUERY PLAN"]);
        let plan: String = r[0]
            .rows
            .iter()
            .map(|row| row[0].as_str())
            .filter(|l| !l.contains("measured:") && !l.starts_with("accuracy:"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(
            plan.contains("constraints: arms_pruned="),
            "{layout:?}: the plan must report pruning:\n{plan}"
        );
        check_golden(file, &plan);
        client.terminate();
        listener.shutdown();
    }
}
