//! Failure-mode integration tests: statement-size rejection, inconsistent
//! KBs, empty ABoxes, unsatisfiable queries, degenerate covers.

use obda::core::{choose_reformulation, Strategy, StructuralEstimator};
use obda::dllite::Dependencies;
use obda::prelude::*;

#[test]
fn empty_abox_everything_is_empty_but_nothing_crashes() {
    let kb = KnowledgeBase::parse("A <= B\nrole r <= s").unwrap();
    assert!(kb.is_consistent());
    let a = kb.voc().find_concept("B").unwrap();
    let q = CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(a, Term::Var(VarId(0)))]);
    let deps = Dependencies::compute(kb.voc(), kb.tbox());
    for strategy in [
        Strategy::Ucq,
        Strategy::CrootJucq,
        Strategy::Gdl { time_budget: None },
    ] {
        let chosen = choose_reformulation(&q, kb.tbox(), &deps, &StructuralEstimator, &strategy);
        for layout in [LayoutKind::Simple, LayoutKind::Triple, LayoutKind::Dph] {
            let engine = Engine::load(kb.abox(), kb.voc(), layout, EngineProfile::pg_like());
            assert!(engine.evaluate(&chosen.fol).unwrap().rows.is_empty());
        }
    }
}

#[test]
fn unsatisfiable_query_predicate_not_in_data() {
    let kb = KnowledgeBase::parse("A(x)\nr(x, y)").unwrap();
    let mut kb = kb;
    let ghost = kb.voc_mut().concept("Ghost");
    let q = CQ::with_var_head(
        vec![VarId(0)],
        vec![Atom::Concept(ghost, Term::Var(VarId(0)))],
    );
    let engine = Engine::load(
        kb.abox(),
        kb.voc(),
        LayoutKind::Simple,
        EngineProfile::pg_like(),
    );
    assert!(engine.evaluate(&FolQuery::Cq(q)).unwrap().rows.is_empty());
}

#[test]
fn statement_limit_is_exact_not_fuzzy() {
    let kb = KnowledgeBase::parse("r(a, b)").unwrap();
    let r = kb.voc().find_role("r").unwrap();
    let q = FolQuery::Cq(CQ::with_var_head(
        vec![VarId(0), VarId(1)],
        vec![Atom::Role(r, Term::Var(VarId(0)), Term::Var(VarId(1)))],
    ));
    let mut profile = EngineProfile::db2_like();
    let engine = Engine::load(kb.abox(), kb.voc(), LayoutKind::Simple, profile.clone());
    let sql_len = engine.sql_for(&q).len();
    // Exactly at the limit: accepted.
    profile.max_statement_bytes = Some(sql_len);
    let engine = Engine::load(kb.abox(), kb.voc(), LayoutKind::Simple, profile.clone());
    assert!(engine.evaluate(&q).is_ok());
    // One byte below: rejected with the exact size in the error.
    profile.max_statement_bytes = Some(sql_len - 1);
    let engine = Engine::load(kb.abox(), kb.voc(), LayoutKind::Simple, profile);
    match engine.evaluate(&q) {
        Err(obda::rdbms::EngineError::StatementTooLong { size, limit }) => {
            assert_eq!(size, sql_len);
            assert_eq!(limit, sql_len - 1);
        }
        other => panic!("expected StatementTooLong, got {other:?}"),
    }
}

#[test]
fn inconsistent_kb_is_reported_by_both_routes() {
    // Negation-free part derives the clash through two axioms.
    let kb = KnowledgeBase::parse("A <= B\nrole r <= s\nexists s <= C\nB <= not C\nA(x)\nr(x, y)")
        .unwrap();
    // x is B (from A) and C (from ∃s via r ⊑ s) — disjoint.
    assert!(!kb.is_consistent());
    assert!(!obda::reform::is_consistent_by_reformulation(
        kb.tbox(),
        kb.abox()
    ));
}

#[test]
fn gdl_with_zero_budget_still_answers_correctly() {
    let kb = KnowledgeBase::parse("A <= B\nA(x)").unwrap();
    let b = kb.voc().find_concept("B").unwrap();
    let q = CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(b, Term::Var(VarId(0)))]);
    let deps = Dependencies::compute(kb.voc(), kb.tbox());
    let chosen = choose_reformulation(
        &q,
        kb.tbox(),
        &deps,
        &StructuralEstimator,
        &Strategy::Gdl {
            time_budget: Some(std::time::Duration::ZERO),
        },
    );
    let got = eval_over_abox(kb.abox(), &chosen.fol);
    assert_eq!(got.len(), 1);
}

#[test]
fn boolean_query_through_the_full_stack() {
    let kb = KnowledgeBase::parse("PhD <= Res\nPhD(d)").unwrap();
    let res = kb.voc().find_concept("Res").unwrap();
    let q = CQ::with_var_head(vec![], vec![Atom::Concept(res, Term::Var(VarId(0)))]);
    let ucq = perfect_ref(&q, kb.tbox());
    let engine = Engine::load(
        kb.abox(),
        kb.voc(),
        LayoutKind::Simple,
        EngineProfile::pg_like(),
    );
    let out = engine.evaluate(&FolQuery::Ucq(ucq)).unwrap();
    assert_eq!(out.rows, vec![Vec::<u32>::new()], "true = the empty tuple");
}
