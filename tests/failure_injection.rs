//! Failure-mode integration tests: statement-size rejection, inconsistent
//! KBs, empty ABoxes, unsatisfiable queries, degenerate covers.

use obda::core::{choose_reformulation, Strategy, StructuralEstimator};
use obda::dllite::Dependencies;
use obda::prelude::*;

#[test]
fn empty_abox_everything_is_empty_but_nothing_crashes() {
    let kb = KnowledgeBase::parse("A <= B\nrole r <= s").unwrap();
    assert!(kb.is_consistent());
    let a = kb.voc().find_concept("B").unwrap();
    let q = CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(a, Term::Var(VarId(0)))]);
    let deps = Dependencies::compute(kb.voc(), kb.tbox());
    for strategy in [
        Strategy::Ucq,
        Strategy::CrootJucq,
        Strategy::Gdl { time_budget: None },
    ] {
        let chosen = choose_reformulation(&q, kb.tbox(), &deps, &StructuralEstimator, &strategy);
        for layout in [LayoutKind::Simple, LayoutKind::Triple, LayoutKind::Dph] {
            let engine = Engine::load(kb.abox(), kb.voc(), layout, EngineProfile::pg_like());
            assert!(engine.evaluate(&chosen.fol).unwrap().rows.is_empty());
        }
    }
}

#[test]
fn unsatisfiable_query_predicate_not_in_data() {
    let kb = KnowledgeBase::parse("A(x)\nr(x, y)").unwrap();
    let mut kb = kb;
    let ghost = kb.voc_mut().concept("Ghost");
    let q = CQ::with_var_head(
        vec![VarId(0)],
        vec![Atom::Concept(ghost, Term::Var(VarId(0)))],
    );
    let engine = Engine::load(
        kb.abox(),
        kb.voc(),
        LayoutKind::Simple,
        EngineProfile::pg_like(),
    );
    assert!(engine.evaluate(&FolQuery::Cq(q)).unwrap().rows.is_empty());
}

#[test]
fn statement_limit_is_exact_not_fuzzy() {
    let kb = KnowledgeBase::parse("r(a, b)").unwrap();
    let r = kb.voc().find_role("r").unwrap();
    let q = FolQuery::Cq(CQ::with_var_head(
        vec![VarId(0), VarId(1)],
        vec![Atom::Role(r, Term::Var(VarId(0)), Term::Var(VarId(1)))],
    ));
    let mut profile = EngineProfile::db2_like();
    let engine = Engine::load(kb.abox(), kb.voc(), LayoutKind::Simple, profile.clone());
    let sql_len = engine.sql_for(&q).len();
    // Exactly at the limit: accepted.
    profile.max_statement_bytes = Some(sql_len);
    let engine = Engine::load(kb.abox(), kb.voc(), LayoutKind::Simple, profile.clone());
    assert!(engine.evaluate(&q).is_ok());
    // One byte below: rejected with the exact size in the error.
    profile.max_statement_bytes = Some(sql_len - 1);
    let engine = Engine::load(kb.abox(), kb.voc(), LayoutKind::Simple, profile);
    match engine.evaluate(&q) {
        Err(obda::rdbms::EngineError::StatementTooLong { size, limit }) => {
            assert_eq!(size, sql_len);
            assert_eq!(limit, sql_len - 1);
        }
        other => panic!("expected StatementTooLong, got {other:?}"),
    }
}

#[test]
fn inconsistent_kb_is_reported_by_both_routes() {
    // Negation-free part derives the clash through two axioms.
    let kb = KnowledgeBase::parse("A <= B\nrole r <= s\nexists s <= C\nB <= not C\nA(x)\nr(x, y)")
        .unwrap();
    // x is B (from A) and C (from ∃s via r ⊑ s) — disjoint.
    assert!(!kb.is_consistent());
    assert!(!obda::reform::is_consistent_by_reformulation(
        kb.tbox(),
        kb.abox()
    ));
}

#[test]
fn gdl_with_zero_budget_still_answers_correctly() {
    let kb = KnowledgeBase::parse("A <= B\nA(x)").unwrap();
    let b = kb.voc().find_concept("B").unwrap();
    let q = CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(b, Term::Var(VarId(0)))]);
    let deps = Dependencies::compute(kb.voc(), kb.tbox());
    let chosen = choose_reformulation(
        &q,
        kb.tbox(),
        &deps,
        &StructuralEstimator,
        &Strategy::Gdl {
            time_budget: Some(std::time::Duration::ZERO),
        },
    );
    let got = eval_over_abox(kb.abox(), &chosen.fol);
    assert_eq!(got.len(), 1);
}

#[test]
fn boolean_query_through_the_full_stack() {
    let kb = KnowledgeBase::parse("PhD <= Res\nPhD(d)").unwrap();
    let res = kb.voc().find_concept("Res").unwrap();
    let q = CQ::with_var_head(vec![], vec![Atom::Concept(res, Term::Var(VarId(0)))]);
    let ucq = perfect_ref(&q, kb.tbox());
    let engine = Engine::load(
        kb.abox(),
        kb.voc(),
        LayoutKind::Simple,
        EngineProfile::pg_like(),
    );
    let out = engine.evaluate(&FolQuery::Ucq(ucq)).unwrap();
    assert_eq!(out.rows, vec![Vec::<u32>::new()], "true = the empty tuple");
}

// ---------------------------------------------------------------------------
// Wire-protocol framing fuzz: a hostile peer throws malformed bytes at a
// live listener. The invariant under every abuse: the server answers
// with a clean ErrorResponse (or just closes), never panics, and keeps
// serving other connections.
// ---------------------------------------------------------------------------

mod pgwire_fuzz {
    use obda::prelude::*;
    use obda::rdbms::pgwire::{PgConfig, PgListener, WireClient};
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::sync::Arc;
    use std::time::Duration;

    /// A tiny live listener over a 3-fact KB.
    fn listener() -> (PgListener, std::net::SocketAddr) {
        let kb = KnowledgeBase::parse("A <= B\nA(x)\nr(x, y)").unwrap();
        let server = Arc::new(Server::new(
            kb.voc().clone(),
            kb.tbox().clone(),
            kb.abox(),
            ServerConfig {
                reform_strategy: Strategy::CrootJucq,
                ..ServerConfig::default()
            },
        ));
        let l = PgListener::bind("127.0.0.1:0", server, PgConfig::default())
            .expect("bind ephemeral port");
        let addr = l.local_addr();
        (l, addr)
    }

    /// Read whatever the server sends until it closes; the first byte of
    /// each message must be a sane backend tag — in particular a final
    /// ErrorResponse ('E') is fine, garbage is not.
    fn drain(stream: &mut TcpStream) -> Vec<u8> {
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut all = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => all.extend_from_slice(&buf[..n]),
                Err(_) => break,
            }
        }
        all
    }

    /// After the abuse, the listener must still serve a healthy client.
    fn assert_still_serving(addr: &std::net::SocketAddr) {
        let mut healthy = WireClient::connect(addr, &[]).expect("listener survives the abuse");
        let r = healthy
            .simple_query("SELECT ?v WHERE B(?v)")
            .expect("queries still answer");
        assert_eq!(r[0].rows, vec![vec!["x".to_string()]]);
        healthy.terminate();
    }

    /// A valid startup packet for hand-rolled streams.
    fn raw_startup(stream: &mut TcpStream) {
        let body = b"\x00\x03\x00\x00user\0fuzz\0\0";
        let len = (body.len() + 4) as i32;
        stream.write_all(&len.to_be_bytes()).unwrap();
        stream.write_all(body).unwrap();
        // Drain the auth-ok burst up to ReadyForQuery.
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut seen = Vec::new();
        let mut buf = [0u8; 1024];
        while !seen.windows(6).any(|w| w == [b'Z', 0, 0, 0, 5, b'I']) {
            match stream.read(&mut buf) {
                Ok(0) => panic!("server closed during valid startup"),
                Ok(n) => seen.extend_from_slice(&buf[..n]),
                Err(e) => panic!("startup stalled: {e}"),
            }
        }
    }

    #[test]
    fn truncated_startup_header() {
        let (mut l, addr) = listener();
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&[0, 0]).unwrap(); // 2 of 8 prelude bytes, then vanish
        drop(s);
        assert_still_serving(&addr);
        l.shutdown();
    }

    #[test]
    fn oversized_startup_length() {
        let (mut l, addr) = listener();
        let mut s = TcpStream::connect(addr).unwrap();
        // Declares 2 GiB; must be refused without allocating it.
        s.write_all(&0x7fff_ffffi32.to_be_bytes()).unwrap();
        s.write_all(&196_608u32.to_be_bytes()).unwrap();
        let bytes = drain(&mut s);
        assert_eq!(bytes.first(), Some(&b'E'), "expected ErrorResponse");
        assert_still_serving(&addr);
        l.shutdown();
    }

    #[test]
    fn truncated_message_header_after_startup() {
        let (mut l, addr) = listener();
        let mut s = TcpStream::connect(addr).unwrap();
        raw_startup(&mut s);
        s.write_all(&[b'Q', 0, 0]).unwrap(); // 3 of 5 header bytes
        drop(s); // mid-header disconnect
        assert_still_serving(&addr);
        l.shutdown();
    }

    #[test]
    fn oversized_declared_message_length() {
        let (mut l, addr) = listener();
        let mut s = TcpStream::connect(addr).unwrap();
        raw_startup(&mut s);
        // 'Q' declaring ~2 GiB of body.
        s.write_all(&[b'Q', 0x7f, 0xff, 0xff, 0xff]).unwrap();
        let bytes = drain(&mut s);
        assert_eq!(bytes.first(), Some(&b'E'), "expected ErrorResponse");
        assert_still_serving(&addr);
        l.shutdown();
    }

    #[test]
    fn undersized_declared_message_length() {
        let (mut l, addr) = listener();
        let mut s = TcpStream::connect(addr).unwrap();
        raw_startup(&mut s);
        // Length 3 < the 4-byte minimum (the length field itself).
        s.write_all(&[b'Q', 0, 0, 0, 3]).unwrap();
        let bytes = drain(&mut s);
        assert_eq!(bytes.first(), Some(&b'E'), "expected ErrorResponse");
        assert_still_serving(&addr);
        l.shutdown();
    }

    #[test]
    fn unknown_message_tag() {
        let (mut l, addr) = listener();
        let mut s = TcpStream::connect(addr).unwrap();
        raw_startup(&mut s);
        s.write_all(&[b'!', 0, 0, 0, 4]).unwrap();
        let bytes = drain(&mut s);
        assert_eq!(bytes.first(), Some(&b'E'), "expected ErrorResponse");
        assert_still_serving(&addr);
        l.shutdown();
    }

    #[test]
    fn mid_message_disconnect() {
        let (mut l, addr) = listener();
        let mut s = TcpStream::connect(addr).unwrap();
        raw_startup(&mut s);
        // Declare 256 bytes of body, deliver 2, vanish.
        s.write_all(&[b'Q', 0, 0, 1, 4, b'S', b'E']).unwrap();
        drop(s);
        assert_still_serving(&addr);
        l.shutdown();
    }

    #[test]
    fn unterminated_query_string() {
        let (mut l, addr) = listener();
        let mut s = TcpStream::connect(addr).unwrap();
        raw_startup(&mut s);
        // A 'Q' body with no NUL terminator anywhere.
        let body = b"SHOW backend"; // no trailing \0
        let len = (body.len() + 4) as i32;
        s.write_all(&[b'Q']).unwrap();
        s.write_all(&len.to_be_bytes()).unwrap();
        s.write_all(body).unwrap();
        let bytes = drain(&mut s);
        assert_eq!(bytes.first(), Some(&b'E'), "expected ErrorResponse");
        assert_still_serving(&addr);
        l.shutdown();
    }

    #[test]
    fn malformed_extended_bodies() {
        let (mut l, addr) = listener();
        // Truncated Parse / Bind / Execute bodies: each gets an error
        // (not a hang, not a panic), and Sync recovers the session.
        for (tag, body) in [
            (b'P', &b"stmt\0no-nparams\0"[..]),
            (b'B', &b"\0stmt\0"[..]),
            (b'E', &b"portal-without-nul"[..]),
            (b'D', &b"X\0"[..]),
        ] {
            let mut s = TcpStream::connect(addr).unwrap();
            raw_startup(&mut s);
            let len = (body.len() + 4) as i32;
            s.write_all(&[tag]).unwrap();
            s.write_all(&len.to_be_bytes()).unwrap();
            s.write_all(body).unwrap();
            // Sync: a malformed *body* is an in-protocol error, so the
            // error comes followed by ReadyForQuery after Sync.
            s.write_all(&[b'S', 0, 0, 0, 4]).unwrap();
            s.write_all(&[b'X', 0, 0, 0, 4]).unwrap();
            let bytes = drain(&mut s);
            assert!(
                bytes.contains(&b'E'),
                "tag '{}' must produce an ErrorResponse",
                tag.escape_ascii()
            );
        }
        assert_still_serving(&addr);
        l.shutdown();
    }

    /// Deterministic pseudo-random garbage: bytes from a simple LCG are
    /// thrown at the socket both before and after a valid startup.
    #[test]
    fn random_garbage_streams() {
        let (mut l, addr) = listener();
        let mut seed: u64 = 0x9e3779b97f4a7c15;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u8
        };
        for round in 0..8 {
            let garbage: Vec<u8> = (0..64 + round * 37).map(|_| next()).collect();
            let mut s = TcpStream::connect(addr).unwrap();
            if round % 2 == 1 {
                raw_startup(&mut s);
            }
            let _ = s.write_all(&garbage);
            let _ = drain(&mut s);
        }
        assert_still_serving(&addr);
        l.shutdown();
    }
}

/// The Prometheus endpoint is a hand-rolled HTTP responder; feed it the
/// traffic a port scanner or confused client produces and require that
/// it (a) never panics and (b) keeps serving well-formed scrapes.
#[test]
fn metrics_endpoint_survives_malformed_http() {
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::sync::Arc;
    use std::time::Duration;

    let kb = KnowledgeBase::parse("A <= B\nA(x)\nr(x, y)").unwrap();
    let server = Arc::new(Server::new(
        kb.voc().clone(),
        kb.tbox().clone(),
        kb.abox(),
        ServerConfig::default(),
    ));
    let mut endpoint =
        MetricsEndpoint::bind("127.0.0.1:0", server.clone()).expect("bind ephemeral port");
    let addr = endpoint.local_addr();

    let scrape = |label: &str| -> String {
        let mut s = TcpStream::connect(addr).expect(label);
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        s.read_to_string(&mut response).expect(label);
        assert!(
            response.starts_with("HTTP/1.1 200"),
            "{label}: {:?}",
            response.lines().next()
        );
        response
    };
    assert!(scrape("initial scrape").contains("obda_queries_total"));

    let hostile: &[(&str, &[u8])] = &[
        ("binary garbage", b"\x00\xff\x13\x37garbage\r\n\r\n"),
        ("POST method", b"POST /metrics HTTP/1.1\r\n\r\n"),
        ("wrong path", b"GET /nope HTTP/1.1\r\n\r\n"),
        ("empty request", b"\r\n\r\n"),
        ("bare newlines", b"\n\n"),
        ("no terminator", b"GET /metrics HTTP/1.1"),
    ];
    for (label, bytes) in hostile {
        let mut s = TcpStream::connect(addr).unwrap_or_else(|e| panic!("{label}: {e}"));
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = s.write_all(bytes);
        // The endpoint may answer with an error status or just close;
        // either way it must not hang past its own deadline or die.
        let mut response = String::new();
        let _ = s.read_to_string(&mut response);
        if !response.is_empty() {
            assert!(
                !response.starts_with("HTTP/1.1 200") || *label == "no terminator",
                "{label} must not be served metrics: {:?}",
                response.lines().next()
            );
        }
        drop(s);
        // The next well-formed scrape still works.
        scrape(label);
    }

    // A peer that connects and immediately disappears.
    drop(TcpStream::connect(addr).unwrap());
    // An oversized request (past the 4KB cap).
    {
        let mut s = TcpStream::connect(addr).unwrap();
        let _ = s.write_all(&vec![b'A'; 64 * 1024]);
        let mut response = String::new();
        let _ = s.read_to_string(&mut response);
    }
    let final_scrape = scrape("final scrape");
    assert!(final_scrape.contains("obda_panics_recovered_total 0"));
    endpoint.shutdown();
    // Shutdown is idempotent and closes the port.
    endpoint.shutdown();
    assert!(
        TcpStream::connect(addr).is_err(),
        "endpoint must stop accepting after shutdown"
    );
}
