//! End-to-end integration over the LUBM∃-style benchmark: every strategy,
//! every layout, both engine profiles — all must return exactly the
//! certain answers (Theorems 1 and 3 at system level).

use std::collections::HashSet;

use obda::core::{choose_reformulation, Strategy};
use obda::dllite::Dependencies;
use obda::prelude::*;

fn small_dataset() -> (UnivOntology, ABox, Dependencies) {
    let mut onto = UnivOntology::build();
    let config = GenConfig {
        target_facts: 3_000,
        ..Default::default()
    };
    let (abox, _) = generate(&mut onto, &config);
    let deps = Dependencies::compute(&onto.voc, &onto.tbox);
    (onto, abox, deps)
}

/// The generated data is consistent with the ontology (both routes).
#[test]
fn generated_data_is_consistent() {
    let (onto, abox, _) = small_dataset();
    assert!(is_consistent(&onto.voc, &onto.tbox, &abox));
}

/// Strategies × layouts × profiles agree with the certain-answer oracle
/// on a representative workload subset (kept small: oracle evaluation is
/// exponential-ish in data size).
#[test]
fn strategies_layouts_profiles_agree_with_oracle() {
    let (onto, abox, deps) = small_dataset();
    let wl = workload(&onto);
    let subset = ["Q3", "Q8", "Q12", "Q2"];
    for q in wl.iter().filter(|q| subset.contains(&q.name.as_str())) {
        let truth: HashSet<Vec<u32>> = certain_answers(&onto.tbox, &abox, &q.cq)
            .into_iter()
            .map(|row| row.into_iter().map(|i| i.0).collect())
            .collect();
        for layout in [LayoutKind::Simple, LayoutKind::Triple, LayoutKind::Dph] {
            for profile in [EngineProfile::pg_like(), EngineProfile::db2_like()] {
                let engine = Engine::load(&abox, &onto.voc, layout, profile);
                for strategy in [
                    Strategy::Ucq,
                    Strategy::CrootJucq,
                    Strategy::Gdl { time_budget: None },
                ] {
                    let est = engine.ext_cost_model();
                    let chosen = choose_reformulation(&q.cq, &onto.tbox, &deps, &est, &strategy);
                    match engine.evaluate(&chosen.fol) {
                        Ok(out) => {
                            let got: HashSet<Vec<u32>> = out.rows.into_iter().collect();
                            assert_eq!(got, truth, "{} under {strategy:?} on {layout:?}", q.name);
                        }
                        Err(e) => {
                            // Only the DPH layout under the DB2 profile may
                            // legitimately refuse (statement size).
                            assert_eq!(layout, LayoutKind::Dph, "{e}");
                        }
                    }
                }
            }
        }
    }
}

/// The engine's explain estimator and the external model both rank a
/// selective single-CQ far below a full UCQ reformulation.
#[test]
fn cost_models_are_sane_on_real_data() {
    let (onto, abox, _) = small_dataset();
    let engine = Engine::load(
        &abox,
        &onto.voc,
        LayoutKind::Simple,
        EngineProfile::pg_like(),
    );
    let wl = workload(&onto);
    let q5 = wl.iter().find(|q| q.name == "Q5").unwrap();
    let full = obda::reform::perfect_ref_pruned(&q5.cq, &onto.tbox);
    let single = FolQuery::Cq(q5.cq.clone());
    let ucq = FolQuery::Ucq(full);
    assert!(engine.explain(&single) < engine.explain(&ucq));
    let ext = engine.ext_cost_model();
    assert!(ext.estimate_fol(&single) < ext.estimate_fol(&ucq));
}

/// The DB2RDF-like layout rejects the big minimal UCQs under the DB2
/// statement-size limit — the Figure-3 failure mode — while the simple
/// layout accepts them.
#[test]
fn statement_size_failure_mode() {
    let (onto, abox, deps) = small_dataset();
    let wl = workload(&onto);
    let q10 = wl.iter().find(|q| q.name == "Q10").unwrap();
    let mut profile = EngineProfile::db2_like();
    profile.max_statement_bytes = Some(200_000); // small-scale stand-in
    let rdf = Engine::load(&abox, &onto.voc, LayoutKind::Dph, profile.clone());
    let simple = Engine::load(&abox, &onto.voc, LayoutKind::Simple, profile);
    let est = simple.ext_cost_model();
    let chosen = choose_reformulation(&q10.cq, &onto.tbox, &deps, &est, &Strategy::Ucq);
    assert!(simple.evaluate(&chosen.fol).is_ok(), "simple layout fits");
    let err = rdf.evaluate(&chosen.fol);
    assert!(err.is_err(), "DPH layout must exceed the statement limit");
}

/// Reformulation finds answers that plain evaluation misses on the
/// incomplete generated data — the reason OBDA exists.
#[test]
fn reformulation_beats_plain_evaluation() {
    let (onto, abox, _) = small_dataset();
    let wl = workload(&onto);
    let q5 = wl.iter().find(|q| q.name == "Q5").unwrap();
    let plain = eval_over_abox(&abox, &FolQuery::Cq(q5.cq.clone()));
    let reformulated = eval_over_abox(
        &abox,
        &FolQuery::Ucq(obda::reform::perfect_ref_pruned(&q5.cq, &onto.tbox)),
    );
    assert!(
        reformulated.len() > plain.len(),
        "reformulation must surface implied answers ({} vs {})",
        reformulated.len(),
        plain.len()
    );
}

/// Regression: per-arm [`ExecMetrics`] used to report `wall` as zero on
/// every path (the arm scope computed it as a delta of a counter nobody
/// advanced), so any consumer summing arm walls — EXPLAIN ANALYZE's
/// per-arm annotations, the stage traces — saw silence. Arms must now
/// carry real wall clock, on both the sequential and the parallel
/// executor, cold and warm.
#[test]
fn union_arm_metrics_carry_wall_clock() {
    use obda::core::Strategy;

    let (onto, abox, _) = small_dataset();
    for threads in [1usize, 2] {
        let srv = Server::new(
            onto.voc.clone(),
            onto.tbox.clone(),
            &abox,
            ServerConfig {
                reform_strategy: Strategy::Ucq,
                threads,
                ..ServerConfig::default()
            },
        );
        let wl = workload(&onto);
        let q5 = wl.iter().find(|q| q.name == "Q5").unwrap();
        // Cold, then warm: the cache-hit replay must be as observable as
        // the miss.
        let cold = srv.query(&q5.cq).expect("cold Q5");
        assert!(!cold.cache_hit);
        let warm = srv.query(&q5.cq).expect("warm Q5");
        assert!(warm.cache_hit);
        for (label, out) in [("cold", &cold.outcome), ("warm", &warm.outcome)] {
            assert!(
                out.metrics.wall > std::time::Duration::ZERO,
                "{label} (threads={threads}): total wall must be populated"
            );
            assert!(
                out.arm_metrics.len() > 1,
                "{label}: Q5's UCQ reformulation has multiple arms"
            );
            let arm_wall_sum: std::time::Duration = out.arm_metrics.iter().map(|m| m.wall).sum();
            assert!(
                arm_wall_sum > std::time::Duration::ZERO,
                "{label} (threads={threads}): arm walls must not all be zero"
            );
        }
        // The serving layer surfaced the execute span in the outcome.
        assert!(warm.spans.execute > std::time::Duration::ZERO);
        assert_eq!(
            warm.spans.reformulate,
            std::time::Duration::ZERO,
            "a cache hit skips reformulation, and the trace says so"
        );
    }
}

/// The constrained route — mined ABox completeness constraints pruning
/// union arms before execution — agrees with the certain-answer oracle
/// exactly like the unconstrained route, on every layout and both
/// pruning-relevant strategies, and never prunes a union to emptiness.
#[test]
fn constrained_strategies_agree_with_oracle() {
    let (onto, abox, deps) = small_dataset();
    let cons = obda::dllite::ConstraintSet::mine_from_abox(&onto.tbox, &abox);
    let wl = workload(&onto);
    let subset = ["Q3", "Q12"];
    for q in wl.iter().filter(|q| subset.contains(&q.name.as_str())) {
        let truth: HashSet<Vec<u32>> = certain_answers(&onto.tbox, &abox, &q.cq)
            .into_iter()
            .map(|row| row.into_iter().map(|i| i.0).collect())
            .collect();
        for layout in [LayoutKind::Simple, LayoutKind::Triple, LayoutKind::Dph] {
            let engine = Engine::load(&abox, &onto.voc, layout, EngineProfile::pg_like());
            for strategy in [Strategy::Ucq, Strategy::CrootJucq] {
                let est = engine.ext_cost_model();
                let chosen = obda::core::choose_reformulation_constrained(
                    &q.cq,
                    &onto.tbox,
                    &deps,
                    &est,
                    &strategy,
                    Some(&cons),
                );
                let stats = chosen.pruned.expect("constrained route reports stats");
                assert!(stats.kept >= 1, "pruning must never empty the union");
                let got: HashSet<Vec<u32>> = engine
                    .evaluate(&chosen.fol)
                    .expect("pg-like profile has no statement limit")
                    .rows
                    .into_iter()
                    .collect();
                assert_eq!(
                    got, truth,
                    "{} constrained {strategy:?} on {layout:?}",
                    q.name
                );
            }
        }
    }
}
