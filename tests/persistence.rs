//! The persistence suite: durable snapshots, WAL crash recovery, and the
//! serving layer's incremental apply path, end to end.
//!
//! The recovery tests simulate the failure CI injects — a writer killed
//! mid-WAL-append — by tearing the log file at arbitrary byte offsets
//! and reopening the store. "Exact state" means: the recovered
//! vocabulary, ABox and generation equal the pre-crash ones
//! (`PartialEq`), every layout's catalog statistics are counter-exact vs.
//! a rebuild, and the reopened server answers the workload row-for-row
//! like a never-crashed one.

use std::path::PathBuf;

use proptest::prelude::*;

use obda::dllite::AboxDelta;
use obda::prelude::*;
use obda::query::testkit::{random_abox, random_delta, random_tbox, KbShape, Rng};
use obda::rdbms::store::{self, recover, TailStatus};
use obda::rdbms::ServerConfig;

/// A unique scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("obda-persistence-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Example-7 fixture KB plus a query with a non-trivial reformulation.
fn fixture() -> (Vocabulary, TBox, ABox, CQ) {
    let (mut voc, tbox) = obda::dllite::example7_tbox();
    let phd = voc.find_concept("PhDStudent").unwrap();
    let works = voc.find_role("worksWith").unwrap();
    let sup = voc.find_role("supervisedBy").unwrap();
    let damian = voc.individual("Damian");
    let ioana = voc.individual("Ioana");
    let mut abox = ABox::new();
    abox.assert_concept(phd, damian);
    abox.assert_concept(phd, ioana);
    abox.assert_role(works, ioana, damian);
    abox.assert_role(sup, damian, ioana);
    let q = CQ::with_var_head(
        vec![VarId(0)],
        vec![
            Atom::Concept(phd, Term::Var(VarId(0))),
            Atom::Role(works, Term::Var(VarId(0)), Term::Var(VarId(1))),
        ],
    );
    (voc, tbox, abox, q)
}

fn sorted_rows(out: obda::rdbms::ServerOutcome) -> Vec<Vec<u32>> {
    let mut rows = out.outcome.rows;
    rows.sort();
    rows
}

#[test]
fn snapshot_of_lubm_data_is_byte_identical_after_roundtrip() {
    let mut onto = UnivOntology::build();
    let (abox, _) = generate(
        &mut onto,
        &GenConfig {
            target_facts: 600,
            ..Default::default()
        },
    );
    let bytes = store::encode_snapshot(&onto.voc, &onto.tbox, &abox, 17);
    let (voc2, tbox2, abox2, generation) = store::decode_snapshot(&bytes, "mem").unwrap();
    assert_eq!(generation, 17);
    assert_eq!(voc2, onto.voc);
    assert_eq!(abox2, abox);
    assert_eq!(tbox2.axioms(), onto.tbox.axioms());
    assert_eq!(
        store::encode_snapshot(&voc2, &tbox2, &abox2, generation),
        bytes,
        "decode → encode must reproduce the snapshot byte-for-byte"
    );
}

#[test]
fn durable_server_survives_restart_with_exact_state() {
    let dir = scratch("restart");
    let (voc, tbox, abox, q) = fixture();
    let phd = voc.find_concept("PhDStudent").unwrap();
    let works = voc.find_role("worksWith").unwrap();
    let damian = voc.find_individual("Damian").unwrap();
    let ioana = voc.find_individual("Ioana").unwrap();

    let srv =
        Server::create_durable(&dir, voc.clone(), tbox, &abox, ServerConfig::default()).unwrap();
    // Two batches: one interning a fresh individual, one deleting.
    let garcia = obda::dllite::IndividualId(voc.num_individuals() as u32);
    let g1 = srv
        .apply_batch(
            &AboxDelta {
                new_individuals: vec!["Garcia".into()],
                ..AboxDelta::new()
            }
            .insert_concept(phd, garcia)
            .insert_role(works, garcia, damian),
        )
        .unwrap();
    let g2 = srv
        .apply_batch(&AboxDelta::new().delete_role(works, ioana, damian))
        .unwrap();
    assert_eq!((g1, g2), (1, 2));
    let want = sorted_rows(srv.query(&q).unwrap());
    drop(srv); // process "crash": nothing flushed beyond the WAL appends

    let reopened = Server::open(&dir, ServerConfig::default()).unwrap();
    assert_eq!(reopened.generation(), 2, "generation survives recovery");
    assert!(reopened.is_durable());
    let got = sorted_rows(reopened.query(&q).unwrap());
    assert_eq!(got, want, "recovered server answers identically");

    // And the recovered state keeps accepting batches.
    let g3 = reopened
        .apply_batch(&AboxDelta::new().insert_role(works, ioana, damian))
        .unwrap();
    assert_eq!(g3, 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_final_record_recovers_to_last_acknowledged_batch() {
    let dir = scratch("torn");
    let (voc, tbox, abox, q) = fixture();
    let phd = voc.find_concept("PhDStudent").unwrap();
    let works = voc.find_role("worksWith").unwrap();
    let damian = voc.find_individual("Damian").unwrap();
    let ioana = voc.find_individual("Ioana").unwrap();

    let srv = Server::create_durable(&dir, voc, tbox, &abox, ServerConfig::default()).unwrap();
    srv.apply_batch(&AboxDelta::new().delete_concept(phd, damian))
        .unwrap();
    let after_first = recover(&dir).unwrap();
    srv.apply_batch(&AboxDelta::new().insert_role(works, damian, ioana))
        .unwrap();
    drop(srv);

    // The writer dies mid-append of batch 2: chop bytes off the log.
    let wal = dir.join("wal.bin");
    let len = std::fs::metadata(&wal).unwrap().len();
    store::wal::truncate_to(&wal, len - 7).unwrap();

    let kb = recover(&dir).unwrap();
    assert!(kb.torn_tail, "the tear must be detected");
    assert_eq!(kb.generation, 1, "batch 2 was torn, batch 1 survives");
    assert_eq!(kb.abox, after_first.abox, "exact pre-crash state");
    assert_eq!(kb.voc, after_first.voc);

    // Server::open truncates the tear and serves batch-1 state.
    let reopened = Server::open(&dir, ServerConfig::default()).unwrap();
    assert_eq!(reopened.generation(), 1);
    let cold = Server::new(
        kb.voc.clone(),
        kb.tbox.clone(),
        &kb.abox,
        ServerConfig::default(),
    );
    assert_eq!(
        sorted_rows(reopened.query(&q).unwrap()),
        sorted_rows(cold.query(&q).unwrap())
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn auto_compaction_folds_wal_and_recovery_stays_exact() {
    let dir = scratch("compact");
    let (voc, tbox, abox, q) = fixture();
    let phd = voc.find_concept("PhDStudent").unwrap();
    let srv = Server::create_durable(
        &dir,
        voc.clone(),
        tbox,
        &abox,
        ServerConfig {
            compact_every: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // Five batches with compact_every=2: at least two compactions.
    for k in 0..5u32 {
        let fresh = obda::dllite::IndividualId(voc.num_individuals() as u32 + k);
        srv.apply_batch(
            &AboxDelta {
                new_individuals: vec![format!("auto{k}")],
                ..AboxDelta::new()
            }
            .insert_concept(phd, fresh),
        )
        .unwrap();
    }
    assert_eq!(srv.generation(), 5);
    let want = sorted_rows(srv.query(&q).unwrap());
    drop(srv);

    let kb = recover(&dir).unwrap();
    assert_eq!(kb.generation, 5);
    assert!(
        kb.snapshot_generation >= 4,
        "compaction must have folded the WAL (snapshot at {}, expected ≥ 4)",
        kb.snapshot_generation
    );
    let reopened = Server::open(&dir, ServerConfig::default()).unwrap();
    assert_eq!(sorted_rows(reopened.query(&q).unwrap()), want);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite regression: a prepared plan compiled against generation `g`
/// (pinned via `snapshot()`) must keep executing correctly after an
/// `apply_batch` publishes `g+1` — against generation `g`'s data, which
/// the pinned snapshot owns immutably — while the live path recompiles
/// for `g+1` (the cache key embeds the generation).
#[test]
fn prepared_plan_from_generation_g_survives_g_plus_1() {
    let (voc, tbox, abox, q) = fixture();
    let phd = voc.find_concept("PhDStudent").unwrap();
    let ioana = voc.find_individual("Ioana").unwrap();
    let srv = Server::new(voc, tbox, &abox, ServerConfig::default());

    // Compile + cache the plan at generation 0, and pin the snapshot the
    // way an in-flight client would.
    let pinned = srv.snapshot();
    let first = srv.query_on(&pinned, &q).unwrap();
    assert_eq!((first.generation, first.cache_hit), (0, false));
    let want_g0 = {
        let mut rows = first.outcome.rows;
        rows.sort();
        rows
    };

    srv.apply_batch(&AboxDelta::new().delete_concept(phd, ioana))
        .unwrap();

    // Replaying on the pinned snapshot hits the generation-0 cache entry
    // ... which is gone (invalidated), so it recompiles against the
    // pinned snapshot's own engine — and must reproduce generation-0
    // answers exactly.
    let replay = srv.query_on(&pinned, &q).unwrap();
    assert_eq!(replay.generation, 0);
    assert_eq!(sorted_rows(replay), want_g0, "g-plan answers g-data");

    // The live path serves g+1: the deletion is visible and the stale
    // plan was never reused (miss, not hit).
    let live = srv.query(&q).unwrap();
    assert_eq!(live.generation, 1);
    assert!(!live.cache_hit);
    assert!(sorted_rows(live).len() < want_g0.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Crash-anywhere recovery: random KB, random delta batches, a tear
    /// at a random byte offset anywhere past the last fully acknowledged
    /// prefix — recovery must reproduce exactly the state reached by the
    /// batches whose records survived intact.
    #[test]
    fn recovery_replays_to_exact_prefix_state(seed in 0u64..1_000_000, chop in 0u64..64) {
        let dir = scratch(&format!("prop-{seed}-{chop}"));
        let mut rng = Rng::new(seed);
        let shape = KbShape::default();
        let (mut voc, tbox) = random_tbox(&mut rng, &shape);
        let abox = random_abox(&mut rng, &mut voc, &shape);

        let srv = Server::create_durable(
            &dir,
            voc.clone(),
            tbox,
            &abox,
            ServerConfig {
                compact_every: 0, // keep every batch in the WAL
                ..ServerConfig::default()
            },
        ).unwrap();

        // Apply 1..4 random batches, tracking each intermediate state.
        let mut states = vec![(voc.clone(), abox.clone())];
        let mut live_voc = voc;
        let mut live_abox = abox;
        let batches = 1 + rng.below(3);
        for step in 0..batches {
            let delta = random_delta(&mut rng, &live_voc, &live_abox, 6, step);
            srv.apply_batch(&delta).unwrap();
            for name in &delta.new_individuals {
                live_voc.individual(name);
            }
            live_abox.apply(&delta);
            states.push((live_voc.clone(), live_abox.clone()));
        }
        drop(srv);

        // Tear the WAL `chop` bytes short (0 = clean shutdown).
        let wal = dir.join("wal.bin");
        let header = 20u64;
        let len = std::fs::metadata(&wal).unwrap().len();
        let cut = len.saturating_sub(chop).max(header);
        store::wal::truncate_to(&wal, cut).unwrap();
        let (_, surviving, tail) = store::wal::read_wal(&wal).unwrap();
        if cut == len {
            prop_assert_eq!(tail, TailStatus::Clean);
        }

        // Recovery must land exactly on the state after the surviving
        // batches — vocabulary, ABox and generation.
        let kb = recover(&dir).unwrap();
        let (want_voc, want_abox) = &states[surviving.len()];
        prop_assert_eq!(kb.generation, surviving.len() as u64);
        prop_assert_eq!(&kb.voc, want_voc, "seed {}: vocabulary", seed);
        prop_assert_eq!(&kb.abox, want_abox, "seed {}: abox", seed);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

// ---------------------------------------------------------------------------
// Transaction crash recovery: group-commit records and torn groups.
// ---------------------------------------------------------------------------

/// A torn tail *inside* a multi-transaction group-commit record drops
/// the whole group: the record's checksum covers all member deltas, so
/// recovery lands exactly on the last intact record — never on a half
/// group (which could split transactions that were acknowledged
/// together).
#[test]
fn torn_tail_inside_a_group_commit_record_drops_the_whole_group() {
    let dir = scratch("torn-group");
    let (voc, tbox, abox, _) = fixture();
    let phd = voc.find_concept("PhDStudent").unwrap();
    let works = voc.find_role("worksWith").unwrap();
    let damian = voc.find_individual("Damian").unwrap();
    let ioana = voc.find_individual("Ioana").unwrap();

    let mut store = DurableStore::create(&dir, &voc, &tbox, &abox, 0).unwrap();
    // One single-transaction record, then one three-transaction group.
    store
        .append(&AboxDelta::new().insert_concept(phd, ioana))
        .unwrap();
    let group = [
        AboxDelta::new().insert_role(works, damian, ioana),
        AboxDelta::new().delete_concept(phd, damian),
        AboxDelta {
            new_individuals: vec!["Garcia".into()],
            ..AboxDelta::new()
        },
    ];
    store.append_group(&group).unwrap();
    drop(store);

    let wal = dir.join("wal.bin");
    let intact_len = std::fs::metadata(&wal).unwrap().len();

    // Sanity: intact, all four transactions (1 + group of 3) replay.
    let (_, batches, tail) = store::wal::read_wal(&wal).unwrap();
    assert_eq!(tail, TailStatus::Clean);
    assert_eq!(batches.len(), 4, "groups flatten to their transactions");
    assert_eq!(recover(&dir).unwrap().generation, 4);

    // Chop anywhere inside the group record: even with the first member
    // delta's bytes fully present, the whole group must vanish.
    for chop in 1..=24u64 {
        store::wal::truncate_to(&wal, intact_len - chop).unwrap();
        let (_, batches, tail) = store::wal::read_wal(&wal).unwrap();
        assert_eq!(
            batches.len(),
            1,
            "chop {chop}: only the first record survives"
        );
        assert!(matches!(tail, TailStatus::Torn { .. }));
        let kb = recover(&dir).unwrap();
        assert_eq!(kb.generation, 1, "chop {chop}");
        assert!(kb.abox.has_concept(phd, ioana));
        assert!(!kb.abox.has_role(works, damian, ioana));
        assert!(kb.voc.find_individual("Garcia").is_none());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// One buffered transaction operation, for the crash proptest below.
#[derive(Clone, Debug)]
enum TxnOp {
    Concept(obda::dllite::ConceptId, String, bool),
    Role(obda::dllite::RoleId, String, String, bool),
}

fn apply_txn_op(txn: &mut Txn<'_>, op: &TxnOp) {
    match op {
        TxnOp::Concept(c, name, present) => {
            let a = txn.individual(name);
            if *present {
                txn.insert_concept(*c, a);
            } else {
                txn.retract_concept(*c, a);
            }
        }
        TxnOp::Role(r, a_name, b_name, present) => {
            let a = txn.individual(a_name);
            let b = txn.individual(b_name);
            if *present {
                txn.insert_role(*r, a, b);
            } else {
                txn.retract_role(*r, a, b);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Crash-anywhere recovery over *transactions*: interleaved writers
    /// with mixed commits, rollbacks and first-committer-wins losses,
    /// then a tear at a random byte offset — recovery must reproduce
    /// exactly the serial replay of the committed prefix whose records
    /// survived intact. Rolled-back and conflicted transactions never
    /// reach the log, so they can never reappear.
    #[test]
    fn txn_crash_recovery_replays_committed_prefix(
        seed in 0u64..1_000_000,
        chop in 0u64..96,
    ) {
        let dir = scratch(&format!("txn-prop-{seed}-{chop}"));
        let mut rng = Rng::new(seed);
        let shape = KbShape::default();
        let (mut voc, tbox) = random_tbox(&mut rng, &shape);
        let abox = random_abox(&mut rng, &mut voc, &shape);

        let srv = Server::create_durable(
            &dir,
            voc.clone(),
            tbox,
            &abox,
            ServerConfig { compact_every: 0, ..ServerConfig::default() },
        ).unwrap();

        // Random writer scripts over shared individuals + fresh names.
        let names: Vec<String> = (0..voc.num_individuals())
            .map(|i| voc.individual_name(obda::dllite::IndividualId(i as u32)).to_string())
            .collect();
        let writers = 2 + rng.below(2);
        let scripts: Vec<(Vec<TxnOp>, bool)> = (0..writers).map(|w| {
            let ops = (0..1 + rng.below(4)).map(|k| {
                let pick = |rng: &mut Rng, salt: usize| if rng.chance(0.3) {
                    format!("w{w}_new_{salt}")
                } else {
                    names[rng.below(names.len())].clone()
                };
                let present = rng.chance(0.7);
                if rng.chance(0.5) {
                    let c = obda::dllite::ConceptId(rng.below(voc.num_concepts()) as u32);
                    TxnOp::Concept(c, pick(&mut rng, k), present)
                } else {
                    let r = obda::dllite::RoleId(rng.below(voc.num_roles()) as u32);
                    let a = pick(&mut rng, k);
                    let b = pick(&mut rng, k + 50);
                    TxnOp::Role(r, a, b, present)
                }
            }).collect();
            (ops, rng.chance(0.75))
        }).collect();

        // Interleave ops, then finish each writer; track the model state
        // after every successful commit (the WAL-visible prefix states).
        let mut txns: Vec<Option<Txn<'_>>> = (0..writers).map(|_| Some(srv.begin())).collect();
        let mut cursor = vec![0usize; writers];
        let mut model_voc = voc;
        let mut model_abox = abox;
        let mut states = vec![(model_voc.clone(), model_abox.clone())];
        let total: usize = scripts.iter().map(|(ops, _)| ops.len() + 1).sum();
        for _ in 0..total {
            let alive: Vec<usize> = (0..writers)
                .filter(|&w| cursor[w] <= scripts[w].0.len())
                .collect();
            let w = alive[rng.below(alive.len())];
            if cursor[w] < scripts[w].0.len() {
                apply_txn_op(txns[w].as_mut().unwrap(), &scripts[w].0[cursor[w]]);
            } else {
                let txn = txns[w].take().unwrap();
                if scripts[w].1 {
                    let base = txn.snapshot().vocabulary().num_individuals();
                    let ws = txn.working_set().clone();
                    if txn.commit().is_ok() {
                        // Replay the commit on the model: intern the new
                        // names in allocation order, remap provisional
                        // ids, apply the flattened delta.
                        let finals: Vec<obda::dllite::IndividualId> = ws
                            .new_individuals()
                            .iter()
                            .map(|n| model_voc.individual(n))
                            .collect();
                        let delta = ws.delta_with(|id| {
                            if (id.0 as usize) >= base {
                                finals[id.0 as usize - base]
                            } else {
                                id
                            }
                        });
                        model_abox.apply(&delta);
                        states.push((model_voc.clone(), model_abox.clone()));
                    }
                } else {
                    txn.rollback();
                }
            }
            cursor[w] += 1;
        }
        drop(txns);
        drop(srv);

        // Tear the WAL `chop` bytes short and recover.
        let wal = dir.join("wal.bin");
        let header = 20u64;
        let len = std::fs::metadata(&wal).unwrap().len();
        let cut = len.saturating_sub(chop).max(header);
        store::wal::truncate_to(&wal, cut).unwrap();
        let (_, surviving, _) = store::wal::read_wal(&wal).unwrap();

        let kb = recover(&dir).unwrap();
        prop_assert!(surviving.len() < states.len(),
            "surviving transactions cannot exceed commits");
        let (want_voc, want_abox) = &states[surviving.len()];
        prop_assert_eq!(kb.generation, surviving.len() as u64);
        prop_assert_eq!(&kb.voc, want_voc, "seed {}: vocabulary", seed);
        prop_assert_eq!(&kb.abox, want_abox, "seed {}: abox", seed);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
