//! End-to-end tests of the PostgreSQL wire-protocol front end: a raw
//! socket client against a real listener over a real LUBM server.
//!
//! The suite covers the PR's acceptance bars: startup + simple query
//! answering LUBM Q1 correctly under *both* execution backends; the
//! extended protocol; per-session isolation under a panicking session
//! and a malformed peer; admission control; reload visibility; and
//! graceful shutdown.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use obda::prelude::*;
use obda::rdbms::pgwire::{ClientError, PgConfig, PgListener, WireClient};

/// Q1's wire-language rendering (the six-atom star; see
/// `obda_lubm::queries::q1`).
const Q1_WIRE: &str = "SELECT ?x WHERE teacherOf(?x, ?y1), takesCourse(?x, ?y2), \
     researchInterest(?x, ?y3), collaboratesWith(?x, ?y4), \
     authorOf(?x, ?y5), teachingAssistantOf(?x, ?y6)";

struct Fixture {
    server: Arc<Server>,
    listener: PgListener,
    abox: ABox,
    /// Q1's expected answers as individual names, via the in-process API.
    q1_names: BTreeSet<String>,
}

fn fixture(config: PgConfig) -> Fixture {
    let mut onto = obda::lubm::UnivOntology::build();
    let (abox, _report) = generate(
        &mut onto,
        &GenConfig {
            target_facts: 800,
            ..Default::default()
        },
    );
    let q1 = workload(&onto)
        .into_iter()
        .find(|w| w.name == "Q1")
        .expect("workload has Q1")
        .cq;
    let server = Arc::new(Server::new(
        onto.voc.clone(),
        onto.tbox.clone(),
        &abox,
        ServerConfig {
            // The cheap deterministic strategy: these tests exercise the
            // wire layer, not the GDL search.
            reform_strategy: Strategy::CrootJucq,
            ..ServerConfig::default()
        },
    ));
    let outcome = server.query(&q1).expect("Q1 answers in-process");
    let snap = server.snapshot();
    let q1_names: BTreeSet<String> = outcome
        .outcome
        .rows
        .iter()
        .map(|row| {
            snap.vocabulary()
                .individual_name(IndividualId(row[0]))
                .to_string()
        })
        .collect();
    assert!(
        !q1_names.is_empty(),
        "fixture must generate at least one Q1 answer"
    );
    let listener =
        PgListener::bind("127.0.0.1:0", server.clone(), config).expect("bind ephemeral port");
    Fixture {
        server,
        listener,
        abox,
        q1_names,
    }
}

fn names(rows: &[Vec<String>]) -> BTreeSet<String> {
    rows.iter().map(|r| r[0].clone()).collect()
}

#[test]
fn simple_query_answers_q1_under_both_backends() {
    let mut fx = fixture(PgConfig::default());
    let addr = fx.listener.local_addr();

    for backend in ["native", "sql"] {
        let mut client =
            WireClient::connect(&addr, &[("backend", backend)]).expect("startup completes");
        // The handshake announced the session's backend.
        assert!(
            client
                .parameters
                .iter()
                .any(|(k, v)| k == "backend" && v == backend),
            "ParameterStatus must announce backend={backend}"
        );
        let results = client.simple_query(Q1_WIRE).expect("Q1 over the wire");
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].columns, vec!["x"]);
        assert_eq!(
            names(&results[0].rows),
            fx.q1_names,
            "wire Q1 rows must match the in-process answers under {backend}"
        );
        assert_eq!(results[0].tag, format!("SELECT {}", results[0].rows.len()));
        client.terminate();
    }
    fx.listener.shutdown();
}

#[test]
fn extended_protocol_matches_simple_protocol() {
    let mut fx = fixture(PgConfig::default());
    let addr = fx.listener.local_addr();
    let mut client = WireClient::connect(&addr, &[]).expect("startup");

    let ext = client.extended_query(Q1_WIRE).expect("extended Q1");
    assert_eq!(ext.columns, vec!["x"]);
    assert_eq!(names(&ext.rows), fx.q1_names);

    // After an extended-protocol error (unknown statement), Sync
    // restores the session: the next query works.
    let err = client
        .extended_query("SELECT ?x WHERE Nope(?x)")
        .unwrap_err();
    match err {
        ClientError::Server { sqlstate, .. } => assert_eq!(sqlstate, "42601"),
        other => panic!("expected a server error, got {other}"),
    }
    let again = client
        .extended_query("SHOW backend")
        .expect("session recovered");
    assert_eq!(again.rows, vec![vec!["native".to_string()]]);
    client.terminate();
    fx.listener.shutdown();
}

#[test]
fn statements_ask_show_set_and_errors() {
    let mut fx = fixture(PgConfig::default());
    let addr = fx.listener.local_addr();
    let mut client = WireClient::connect(&addr, &[]).expect("startup");

    // Multi-statement buffer: SET is a no-op, SHOW answers, ASK is
    // boolean.
    let results = client
        .simple_query("SET search_path = lubm; SHOW generation; ASK WHERE Student(?x)")
        .expect("multi-statement buffer");
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].tag, "SET");
    assert_eq!(results[1].columns, vec!["generation"]);
    assert_eq!(results[2].columns, vec!["answer"]);
    assert_eq!(results[2].rows, vec![vec!["t".to_string()]]);

    // A syntax error mid-buffer: the completed statement's result is
    // discarded client-side, the error surfaces, the session survives.
    let err = client
        .simple_query("SHOW backend; FROB ?x; SHOW backend")
        .unwrap_err();
    match err {
        ClientError::Server { sqlstate, message } => {
            assert_eq!(sqlstate, "42601");
            assert!(message.contains("unknown statement"), "{message}");
        }
        other => panic!("expected server error, got {other}"),
    }
    let after = client
        .simple_query("SHOW backend")
        .expect("session survives errors");
    assert_eq!(after[0].rows, vec![vec!["native".to_string()]]);

    // Empty buffer → EmptyQueryResponse → zero results.
    assert!(client
        .simple_query("  ;; ")
        .expect("empty buffer")
        .is_empty());
    client.terminate();
    fx.listener.shutdown();
}

#[test]
fn panicking_session_leaves_others_answering() {
    let mut fx = fixture(PgConfig {
        allow_chaos: true,
        ..PgConfig::default()
    });
    let addr = fx.listener.local_addr();

    let mut victim = WireClient::connect(&addr, &[]).expect("victim startup");
    let mut bystander = WireClient::connect(&addr, &[]).expect("bystander startup");

    // Warm the bystander so it holds real session state.
    let before = bystander.simple_query(Q1_WIRE).expect("bystander warms up");
    assert_eq!(names(&before[0].rows), fx.q1_names);

    // The victim's statement panics server-side: it must get XX000 and
    // then lose the connection.
    match victim.simple_query("PANIC") {
        Err(ClientError::Server { sqlstate, message }) => {
            assert_eq!(sqlstate, "XX000");
            assert!(message.contains("panicked"), "{message}");
        }
        // The server may close before the client finishes draining.
        Err(ClientError::Closed) | Err(ClientError::Io(_)) => {}
        Ok(r) => panic!("PANIC statement answered normally: {r:?}"),
        Err(other) => panic!("unexpected client error: {other}"),
    }

    // The bystander and fresh connections still answer.
    let after = bystander
        .simple_query(Q1_WIRE)
        .expect("bystander unaffected");
    assert_eq!(names(&after[0].rows), fx.q1_names);
    let mut fresh = WireClient::connect(&addr, &[]).expect("fresh session after panic");
    let fresh_rows = fresh.simple_query(Q1_WIRE).expect("fresh session answers");
    assert_eq!(names(&fresh_rows[0].rows), fx.q1_names);

    bystander.terminate();
    fresh.terminate();
    fx.listener.shutdown();
}

#[test]
fn chaos_statement_is_refused_when_disabled() {
    let mut fx = fixture(PgConfig::default());
    let addr = fx.listener.local_addr();
    let mut client = WireClient::connect(&addr, &[]).expect("startup");
    match client.simple_query("PANIC") {
        Err(ClientError::Server { sqlstate, .. }) => assert_eq!(sqlstate, "0A000"),
        other => panic!("expected 0A000 refusal, got {other:?}"),
    }
    // Refusal is an ordinary error: the session lives on.
    assert!(client.simple_query("SHOW backend").is_ok());
    client.terminate();
    fx.listener.shutdown();
}

#[test]
fn malformed_peer_leaves_others_answering() {
    let mut fx = fixture(PgConfig::default());
    let addr = fx.listener.local_addr();

    let mut bystander = WireClient::connect(&addr, &[]).expect("bystander startup");

    // A connected-then-hostile peer: valid startup, then garbage frame
    // with an oversized declared length.
    let mut hostile = WireClient::connect(&addr, &[]).expect("hostile startup");
    hostile
        .send_raw(&[b'Q', 0x7f, 0xff, 0xff, 0xff])
        .expect("send oversized header");
    match hostile.read_message() {
        Ok((b'E', _)) => {}
        Ok((tag, _)) => panic!("expected ErrorResponse, got '{}'", tag.escape_ascii()),
        Err(_) => {} // already closed is acceptable
    }

    // And a peer that disconnects mid-message.
    let mut rude = WireClient::connect(&addr, &[]).expect("rude startup");
    rude.send_raw(&[b'Q', 0, 0, 1, 0, b'S'])
        .expect("partial frame");
    drop(rude);

    let rows = bystander
        .simple_query(Q1_WIRE)
        .expect("bystander unaffected");
    assert_eq!(names(&rows[0].rows), fx.q1_names);
    bystander.terminate();
    fx.listener.shutdown();
}

#[test]
fn admission_control_rejects_with_53300() {
    let mut fx = fixture(PgConfig {
        max_connections: 2,
        ..PgConfig::default()
    });
    let addr = fx.listener.local_addr();

    let a = WireClient::connect(&addr, &[]).expect("session 1");
    let b = WireClient::connect(&addr, &[]).expect("session 2");
    // The third must be told 53300 during its handshake.
    match WireClient::connect_timeout(&addr, Duration::from_secs(5), &[]) {
        Err(ClientError::Server { sqlstate, message }) => {
            assert_eq!(sqlstate, "53300");
            assert!(message.contains("too many connections"), "{message}");
        }
        Ok(_) => panic!("third session admitted past max_connections=2"),
        Err(other) => panic!("expected 53300, got {other}"),
    }
    // Freeing a slot readmits.
    a.terminate();
    let admitted = try_connect_until(&addr, Duration::from_secs(5));
    assert!(admitted, "slot freed by terminate must be reusable");
    b.terminate();
    fx.listener.shutdown();
}

/// Admission decrements when the session *thread* exits, which lags the
/// client-side terminate; poll briefly.
fn try_connect_until(addr: &std::net::SocketAddr, budget: Duration) -> bool {
    let deadline = std::time::Instant::now() + budget;
    while std::time::Instant::now() < deadline {
        if let Ok(c) = WireClient::connect(addr, &[]) {
            c.terminate();
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

#[test]
fn reload_is_visible_to_live_sessions() {
    let mut fx = fixture(PgConfig::default());
    let addr = fx.listener.local_addr();
    let mut client = WireClient::connect(&addr, &[]).expect("startup");

    let gen_before = show_one(&mut client, "SHOW generation");
    fx.server.reload_abox(&fx.abox).expect("reload commits");
    let gen_after = show_one(&mut client, "SHOW generation");
    assert!(
        gen_after.parse::<u64>().unwrap() > gen_before.parse::<u64>().unwrap(),
        "live session must observe the new generation ({gen_before} -> {gen_after})"
    );
    // And queries still answer on the new snapshot.
    let rows = client.simple_query(Q1_WIRE).expect("post-reload query");
    assert_eq!(names(&rows[0].rows), fx.q1_names);
    client.terminate();
    fx.listener.shutdown();
}

fn show_one(client: &mut WireClient, stmt: &str) -> String {
    client.simple_query(stmt).expect("SHOW answers")[0].rows[0][0].clone()
}

#[test]
fn graceful_shutdown_tells_idle_sessions_57p01() {
    let mut fx = fixture(PgConfig::default());
    let addr = fx.listener.local_addr();
    let mut client = WireClient::connect(&addr, &[]).expect("startup");
    assert!(client.simple_query("SHOW backend").is_ok());

    fx.listener.shutdown();

    // The idle session was told 57P01 (or simply closed, if the error
    // raced the close); either way the server is gone afterwards.
    match client.read_message() {
        Ok((b'E', body)) => {
            let text = String::from_utf8_lossy(&body).to_string();
            assert!(text.contains("57P01"), "expected 57P01 in {text:?}");
        }
        Ok((tag, _)) => panic!("unexpected message '{}' at shutdown", tag.escape_ascii()),
        Err(_) => {}
    }
    assert!(
        WireClient::connect(&addr, &[]).is_err(),
        "listener must not accept after shutdown"
    );
}

/// A misbehaving *server* declaring a negative, undersized, or oversized
/// frame length must surface a typed [`ClientError::Protocol`] — never an
/// underflow panic in the body-size subtraction or a giant allocation.
/// The client enforces the same 16MB cap as the server-side framing
/// (regression: it used to accept declared lengths up to 64MB).
#[test]
fn client_rejects_hostile_frame_lengths_from_server() {
    use std::io::{Read, Write};
    for evil_len in [-1i32, 3, 17 * 1024 * 1024] {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hostile = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            // Drain the startup packet, then answer with a hostile header.
            let _ = sock.read(&mut [0u8; 1024]);
            let mut frame = vec![b'R'];
            frame.extend_from_slice(&evil_len.to_be_bytes());
            sock.write_all(&frame).unwrap();
            // Hold the socket open until the client reacts.
            let _ = sock.read(&mut [0u8; 16]);
        });
        let Err(err) = WireClient::connect(&addr, &[]) else {
            panic!("hostile header must fail (len {evil_len})")
        };
        match err {
            ClientError::Protocol(detail) => assert!(
                detail.contains(&evil_len.to_string()),
                "declared length should appear in: {detail}"
            ),
            other => panic!("expected a protocol error for len {evil_len}, got {other:?}"),
        }
        hostile.join().unwrap();
    }
}

// ---------------------------------------------------------------------------
// Wire transactions: BEGIN / INSERT / DELETE / COMMIT / ROLLBACK.
// ---------------------------------------------------------------------------

/// Pick a concept name and two individual names from the fixture for
/// fact statements.
fn sample_names(fx: &Fixture) -> (String, String, String) {
    let snap = fx.server.snapshot();
    let voc = snap.vocabulary();
    let concept = voc.concept_name(obda::dllite::ConceptId(0)).to_string();
    let a = voc.individual_name(IndividualId(0)).to_string();
    let b = voc.individual_name(IndividualId(1)).to_string();
    (concept, a, b)
}

fn expect_sqlstate(result: Result<Vec<obda::rdbms::pgwire::QueryResult>, ClientError>, want: &str) {
    match result {
        Err(ClientError::Server { sqlstate, message }) => {
            assert_eq!(sqlstate, want, "wrong SQLSTATE: {message}")
        }
        Ok(r) => panic!("expected SQLSTATE {want}, got success: {r:?}"),
        Err(other) => panic!("expected SQLSTATE {want}, got {other:?}"),
    }
}

#[test]
fn wire_transaction_commit_publishes_and_isolation_holds() {
    let mut fx = fixture(PgConfig::default());
    let addr = fx.listener.local_addr();
    let (concept, _, _) = sample_names(&fx);

    let mut writer = WireClient::connect(&addr, &[]).expect("writer connects");
    let mut reader = WireClient::connect(&addr, &[]).expect("reader connects");

    let r = writer.simple_query("BEGIN").expect("BEGIN");
    assert_eq!(r[0].tag, "BEGIN");
    // Insert a fact about a brand-new individual.
    let r = writer
        .simple_query(&format!("INSERT {concept}(wire_newcomer)"))
        .expect("in-txn INSERT");
    assert_eq!(r[0].tag, "INSERT 0 1");

    // Read-your-own-writes: the writer's SELECT sees the buffered fact,
    // rendered under the provisional name.
    let r = writer
        .simple_query(&format!("SELECT ?x WHERE {concept}(?x)"))
        .expect("in-txn SELECT");
    assert!(
        names(&r[0].rows).contains("wire_newcomer"),
        "writer must see its own uncommitted insert"
    );

    // Snapshot isolation: the reader must not see it before commit —
    // the name does not even resolve.
    let err = reader.simple_query(&format!("SELECT ?x WHERE {concept}(wire_newcomer)"));
    expect_sqlstate(err, "42601");

    let r = writer.simple_query("COMMIT").expect("COMMIT");
    assert_eq!(r[0].tag, "COMMIT");

    // After commit the fact is globally visible.
    let r = reader
        .simple_query(&format!("ASK WHERE {concept}(wire_newcomer)"))
        .expect("post-commit ASK");
    assert_eq!(r[0].rows, vec![vec!["t".to_string()]]);

    writer.terminate();
    reader.terminate();
    fx.listener.shutdown();
}

#[test]
fn wire_rollback_discards_buffered_writes() {
    let mut fx = fixture(PgConfig::default());
    let addr = fx.listener.local_addr();
    let (concept, a, _) = sample_names(&fx);

    let mut client = WireClient::connect(&addr, &[]).expect("connect");
    let before = show_one(&mut client, "SHOW generation");

    client.simple_query("BEGIN").expect("BEGIN");
    let r = client
        .simple_query(&format!("INSERT {concept}({a}); DELETE {concept}({a})"))
        .expect("buffered writes");
    assert_eq!(r[0].tag, "INSERT 0 1");
    assert_eq!(r[1].tag, "DELETE 1");
    let r = client.simple_query("ROLLBACK").expect("ROLLBACK");
    assert_eq!(r[0].tag, "ROLLBACK");

    // Nothing was published: the generation did not move.
    assert_eq!(show_one(&mut client, "SHOW generation"), before);
    client.terminate();
    fx.listener.shutdown();
}

#[test]
fn commit_outside_transaction_is_a_typed_error() {
    let mut fx = fixture(PgConfig::default());
    let addr = fx.listener.local_addr();
    let mut client = WireClient::connect(&addr, &[]).expect("connect");

    expect_sqlstate(client.simple_query("COMMIT"), "25P01");
    expect_sqlstate(client.simple_query("ROLLBACK"), "25P01");
    // The connection survives and keeps answering.
    let r = client.simple_query("SHOW backend").expect("still alive");
    assert_eq!(r[0].rows.len(), 1);
    client.terminate();
    fx.listener.shutdown();
}

#[test]
fn show_transaction_reports_session_state() {
    let mut fx = fixture(PgConfig::default());
    let addr = fx.listener.local_addr();
    let (concept, _, _) = sample_names(&fx);
    let mut client = WireClient::connect(&addr, &[]).expect("connect");

    let r = client.simple_query("SHOW transaction").expect("idle SHOW");
    assert_eq!(
        r[0].columns,
        vec![
            "transaction_status",
            "pending_ops",
            "new_names",
            "pinned_generation"
        ]
    );
    assert_eq!(r[0].rows[0][0], "idle");

    client.simple_query("BEGIN").expect("BEGIN");
    client
        .simple_query(&format!("INSERT {concept}(show_txn_newcomer)"))
        .expect("INSERT");
    let r = client.simple_query("SHOW transaction").expect("open SHOW");
    assert_eq!(r[0].rows[0][0], "open");
    assert_eq!(r[0].rows[0][1], "1", "one buffered fact write");
    assert_eq!(r[0].rows[0][2], "1", "one transaction-local name");
    assert_eq!(
        r[0].rows[0][3],
        fx.server.snapshot().generation().to_string(),
        "pinned at the begin generation"
    );
    client.simple_query("ROLLBACK").expect("ROLLBACK");
    client.terminate();
    fx.listener.shutdown();
}

#[test]
fn error_inside_transaction_aborts_it_until_rollback() {
    let mut fx = fixture(PgConfig::default());
    let addr = fx.listener.local_addr();
    let (concept, a, _) = sample_names(&fx);
    let mut client = WireClient::connect(&addr, &[]).expect("connect");

    client.simple_query("BEGIN").expect("BEGIN");
    client
        .simple_query(&format!("INSERT {concept}(aborted_newcomer)"))
        .expect("INSERT");
    // A syntax error aborts the transaction...
    expect_sqlstate(client.simple_query("SELECT garbage"), "42601");
    // ...after which ordinary statements are refused with 25P02...
    expect_sqlstate(
        client.simple_query(&format!("ASK WHERE {concept}({a})")),
        "25P02",
    );
    let r = client.simple_query("SHOW transaction");
    expect_sqlstate(r, "25P02");
    // ...and COMMIT rolls back, reporting what really happened.
    let r = client
        .simple_query("COMMIT")
        .expect("COMMIT of aborted txn");
    assert_eq!(r[0].tag, "ROLLBACK");

    // The buffered insert never published.
    expect_sqlstate(
        client.simple_query(&format!("ASK WHERE {concept}(aborted_newcomer)")),
        "42601",
    );
    client.terminate();
    fx.listener.shutdown();
}

#[test]
fn conflicting_wire_commits_get_serialization_failure() {
    let mut fx = fixture(PgConfig::default());
    let addr = fx.listener.local_addr();
    let (concept, a, _) = sample_names(&fx);

    let mut first = WireClient::connect(&addr, &[]).expect("first connects");
    let mut second = WireClient::connect(&addr, &[]).expect("second connects");

    first.simple_query("BEGIN").expect("first BEGIN");
    second.simple_query("BEGIN").expect("second BEGIN");
    first
        .simple_query(&format!("INSERT {concept}({a})"))
        .expect("first write");
    second
        .simple_query(&format!("DELETE {concept}({a})"))
        .expect("second write");

    let r = first.simple_query("COMMIT").expect("first commit wins");
    assert_eq!(r[0].tag, "COMMIT");
    // First-committer-wins: the overlapping key aborts the second.
    expect_sqlstate(second.simple_query("COMMIT"), "40001");

    // The loser's session is back to idle and can retry.
    let r = second.simple_query("SHOW transaction").expect("idle again");
    assert_eq!(r[0].rows[0][0], "idle");
    first.terminate();
    second.terminate();
    fx.listener.shutdown();
}

#[test]
fn autocommit_mutations_publish_immediately() {
    let mut fx = fixture(PgConfig::default());
    let addr = fx.listener.local_addr();
    let (concept, _, _) = sample_names(&fx);
    let mut client = WireClient::connect(&addr, &[]).expect("connect");

    let before: u64 = show_one(&mut client, "SHOW generation").parse().unwrap();
    let r = client
        .simple_query(&format!("INSERT {concept}(autocommit_newcomer)"))
        .expect("autocommit INSERT");
    assert_eq!(r[0].tag, "INSERT 0 1");
    let after: u64 = show_one(&mut client, "SHOW generation").parse().unwrap();
    assert_eq!(after, before + 1, "autocommit publishes one generation");
    let r = client
        .simple_query(&format!("ASK WHERE {concept}(autocommit_newcomer)"))
        .expect("ASK");
    assert_eq!(r[0].rows, vec![vec!["t".to_string()]]);

    // DELETE of a fact about an unknown individual is a no-op, not an
    // error, and reports zero applied facts.
    let r = client
        .simple_query(&format!("DELETE {concept}(never_existed)"))
        .expect("no-op DELETE");
    assert_eq!(r[0].tag, "DELETE 0");
    client.terminate();
    fx.listener.shutdown();
}

// ---------------------------------------------------------------------------
// Observability: SHOW metrics / SHOW slow_queries / EXPLAIN ANALYZE.
// ---------------------------------------------------------------------------

/// Collect a `SHOW metrics` result into a name → value map.
fn metrics_map(client: &mut WireClient) -> std::collections::BTreeMap<String, String> {
    let r = client.simple_query("SHOW metrics").expect("SHOW metrics");
    assert_eq!(r[0].columns, vec!["metric", "value"]);
    r[0].rows
        .iter()
        .map(|row| (row[0].clone(), row[1].clone()))
        .collect()
}

#[test]
fn show_metrics_reports_served_counters() {
    let mut fx = fixture(PgConfig::default());
    let addr = fx.listener.local_addr();

    // Serve Q1 under both backends so both per-backend counters move.
    for backend in ["native", "sql"] {
        let mut client = WireClient::connect(&addr, &[("backend", backend)]).expect("startup");
        client.simple_query(Q1_WIRE).expect("Q1 answers");
        client.terminate();
    }

    let mut client = WireClient::connect(&addr, &[]).expect("startup");
    let m = metrics_map(&mut client);
    // The fixture itself ran Q1 once in-process, so native >= 2.
    let native: u64 = m["queries_total.native"].parse().unwrap();
    let sql: u64 = m["queries_total.sql"].parse().unwrap();
    assert!(native >= 2, "native counter: {native}");
    assert!(sql >= 1, "sql counter: {sql}");
    assert!(m["query_rows_total"].parse::<u64>().unwrap() >= 1);
    assert!(m["plan_cache_misses"].parse::<u64>().unwrap() >= 1);
    // Latency histograms saw every served query.
    assert!(m.contains_key("query_latency_p50_us.native"));
    assert!(m.contains_key("query_latency_p99_us.sql"));
    // Connection admission counted this suite's sessions.
    assert!(m["connections_admitted"].parse::<u64>().unwrap() >= 3);
    assert_eq!(
        m["generation"],
        fx.server.snapshot().generation().to_string()
    );
    // Cost-model accuracy counters moved on the native path.
    assert!(m["cost_predicted_units"].parse::<f64>().unwrap() > 0.0);
    assert!(m["cost_measured_units"].parse::<f64>().unwrap() > 0.0);

    // SHOW statements themselves are not queries: a second SHOW must
    // not move the query counters.
    let m2 = metrics_map(&mut client);
    assert_eq!(m2["queries_total.native"], m["queries_total.native"]);
    client.terminate();
    fx.listener.shutdown();
}

#[test]
fn show_slow_queries_ranks_statements_by_latency() {
    let mut fx = fixture(PgConfig::default());
    let addr = fx.listener.local_addr();
    let mut client = WireClient::connect(&addr, &[]).expect("startup");

    for _ in 0..3 {
        client.simple_query(Q1_WIRE).expect("Q1 answers");
    }
    let r = client
        .simple_query("SHOW slow_queries")
        .expect("SHOW slow_queries");
    assert_eq!(
        r[0].columns,
        vec![
            "trace_id",
            "total_us",
            "parse_us",
            "reformulate_us",
            "plan_us",
            "sqlgen_us",
            "execute_us",
            "serialize_us",
            "backend",
            "cache_hit",
            "generation",
            "rows",
            "query"
        ]
    );
    assert!(
        r[0].rows.len() >= 3,
        "the ring must hold the statements just served, got {}",
        r[0].rows.len()
    );
    // Slowest-first ordering, nonzero totals, query text captured.
    let totals: Vec<u64> = r[0]
        .rows
        .iter()
        .map(|row| row[1].parse().expect("total_us is numeric"))
        .collect();
    assert!(
        totals.windows(2).all(|w| w[0] >= w[1]),
        "slow queries must be sorted slowest-first: {totals:?}"
    );
    assert!(totals[0] > 0, "a served statement takes measurable time");
    for row in &r[0].rows {
        assert!(
            row[12].contains("SELECT"),
            "query text captured: {:?}",
            row[12]
        );
        assert!(
            matches!(row[9].as_str(), "t" | "f"),
            "cache_hit renders as t/f"
        );
    }
    client.terminate();
    fx.listener.shutdown();
}

#[test]
fn explain_analyze_prices_and_measures_under_both_backends() {
    let mut fx = fixture(PgConfig::default());
    let addr = fx.listener.local_addr();

    for backend in ["native", "sql"] {
        let mut client = WireClient::connect(&addr, &[("backend", backend)]).expect("startup");
        let stmt = format!("EXPLAIN ANALYZE {Q1_WIRE}");
        let r = client.simple_query(&stmt).expect("EXPLAIN ANALYZE answers");
        assert_eq!(r[0].columns, vec!["QUERY PLAN"]);
        assert!(r[0].tag.starts_with("EXPLAIN"), "tag: {}", r[0].tag);
        let plan = r[0]
            .rows
            .iter()
            .map(|row| row[0].clone())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(plan.contains(&format!("backend={backend}")), "{plan}");
        assert!(plan.contains("predicted: total_cost="), "{plan}");
        assert!(plan.contains("measured: work_units="), "{plan}");

        // The second run replays the *cached* compilation — the plan a
        // plain query would run — and says so.
        let r = client.simple_query(&stmt).expect("cached EXPLAIN ANALYZE");
        let plan = r[0]
            .rows
            .iter()
            .map(|row| row[0].clone())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(plan.contains("cache_hit=true"), "{plan}");
        client.terminate();
    }
    fx.listener.shutdown();
}

#[test]
fn explain_analyze_handles_ask_and_refuses_transactions() {
    let mut fx = fixture(PgConfig::default());
    let addr = fx.listener.local_addr();
    let mut client = WireClient::connect(&addr, &[]).expect("startup");

    // ASK bodies price and measure like SELECT.
    let r = client
        .simple_query("EXPLAIN ANALYZE ASK WHERE Student(?x)")
        .expect("EXPLAIN ANALYZE ASK");
    assert_eq!(r[0].columns, vec!["QUERY PLAN"]);

    // Inside a transaction block the overlay engine would poison the
    // shared plan cache: refused with a typed feature error.
    client.simple_query("BEGIN").expect("BEGIN");
    expect_sqlstate(
        client.simple_query(&format!("EXPLAIN ANALYZE {Q1_WIRE}")),
        "0A000",
    );
    client.simple_query("ROLLBACK").expect("ROLLBACK");
    // Back out of the block it answers again.
    assert!(client
        .simple_query(&format!("EXPLAIN ANALYZE {Q1_WIRE}"))
        .is_ok());
    client.terminate();
    fx.listener.shutdown();
}

/// The acceptance sweep: EXPLAIN ANALYZE answers on every layout × both
/// backends, always reporting a priced plan and measured work.
#[test]
fn explain_analyze_covers_all_layouts_and_backends() {
    let mut onto = obda::lubm::UnivOntology::build();
    let (abox, _) = generate(
        &mut onto,
        &GenConfig {
            target_facts: 400,
            ..Default::default()
        },
    );
    for layout in [LayoutKind::Simple, LayoutKind::Triple, LayoutKind::Dph] {
        let server = Arc::new(Server::new(
            onto.voc.clone(),
            onto.tbox.clone(),
            &abox,
            ServerConfig {
                layout,
                reform_strategy: Strategy::CrootJucq,
                ..ServerConfig::default()
            },
        ));
        let mut listener = PgListener::bind("127.0.0.1:0", server, PgConfig::default())
            .expect("bind ephemeral port");
        let addr = listener.local_addr();
        for backend in ["native", "sql"] {
            let mut client = WireClient::connect(&addr, &[("backend", backend)]).expect("startup");
            let r = client
                .simple_query("EXPLAIN ANALYZE SELECT ?x WHERE Student(?x), takesCourse(?x, ?y)")
                .unwrap_or_else(|e| panic!("EXPLAIN ANALYZE on {layout:?}/{backend}: {e}"));
            let plan = r[0]
                .rows
                .iter()
                .map(|row| row[0].clone())
                .collect::<Vec<_>>()
                .join("\n");
            assert!(
                plan.contains("predicted: total_cost=") && plan.contains("measured: work_units="),
                "{layout:?}/{backend}: {plan}"
            );
            client.terminate();
        }
        listener.shutdown();
    }
}
