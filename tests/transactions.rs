//! The transaction suite: snapshot isolation, first-committer-wins,
//! group commit, and fuzzy checkpoints, end to end.
//!
//! The acceptance bar is the differential property at the bottom:
//! N interleaved writers with mixed commits and rollbacks must leave the
//! server — vocabulary, catalog statistics, layout state, query answers,
//! and the durable on-disk state — exactly where serially replaying only
//! the committed transactions, in commit order, leaves a fresh server.
//! A fuzzy checkpoint taken mid-stream must not perturb any of it.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use obda::prelude::*;
use obda::query::testkit::{random_abox, random_connected_cq, random_tbox, KbShape, Rng};
use obda::rdbms::store::recover;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("obda-txn-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Example-7 fixture KB plus a query with a non-trivial reformulation.
fn fixture() -> (Vocabulary, TBox, ABox, CQ) {
    let (mut voc, tbox) = obda::dllite::example7_tbox();
    let phd = voc.find_concept("PhDStudent").unwrap();
    let works = voc.find_role("worksWith").unwrap();
    let damian = voc.individual("Damian");
    let ioana = voc.individual("Ioana");
    let mut abox = ABox::new();
    abox.assert_concept(phd, damian);
    abox.assert_role(works, ioana, damian);
    let q = CQ::with_var_head(
        vec![VarId(0)],
        vec![Atom::Concept(phd, Term::Var(VarId(0)))],
    );
    (voc, tbox, abox, q)
}

fn sorted_rows(out: obda::rdbms::ServerOutcome) -> Vec<Vec<u32>> {
    let mut rows = out.outcome.rows;
    rows.sort();
    rows
}

#[test]
fn read_your_own_writes_under_snapshot_isolation() {
    let (voc, tbox, abox, q) = fixture();
    let phd = voc.find_concept("PhDStudent").unwrap();
    let ioana = voc.find_individual("Ioana").unwrap();
    let server = Server::new(voc, tbox, &abox, ServerConfig::default());
    let baseline = sorted_rows(server.query(&q).unwrap());

    let mut txn = server.begin();
    assert!(!txn.contains_concept(phd, ioana));
    txn.insert_concept(phd, ioana);
    assert!(txn.contains_concept(phd, ioana), "read-your-own-writes");
    let in_txn = sorted_rows(txn.query(&q).unwrap());
    assert!(
        in_txn.contains(&vec![ioana.0]),
        "in-transaction query sees the buffered insert"
    );

    // Other sessions see nothing until commit.
    assert_eq!(sorted_rows(server.query(&q).unwrap()), baseline);
    assert_eq!(server.generation(), 0);

    let generation = txn.commit().unwrap();
    assert_eq!(generation, 1);
    assert_eq!(
        sorted_rows(server.query(&q).unwrap()),
        in_txn,
        "committed state equals the transaction's own view"
    );
}

#[test]
fn rollback_and_drop_discard_everything() {
    let (voc, tbox, abox, q) = fixture();
    let phd = voc.find_concept("PhDStudent").unwrap();
    let ioana = voc.find_individual("Ioana").unwrap();
    let server = Server::new(voc, tbox, &abox, ServerConfig::default());
    let baseline = sorted_rows(server.query(&q).unwrap());

    let mut txn = server.begin();
    txn.insert_concept(phd, ioana);
    let newbie = txn.individual("Rollback_Newbie");
    txn.insert_concept(phd, newbie);
    txn.rollback();

    let mut txn = server.begin();
    txn.insert_concept(phd, ioana);
    drop(txn); // implicit rollback

    assert_eq!(server.generation(), 0, "nothing published");
    assert_eq!(sorted_rows(server.query(&q).unwrap()), baseline);
    assert!(
        server
            .snapshot()
            .vocabulary()
            .find_individual("Rollback_Newbie")
            .is_none(),
        "rolled-back names are never interned"
    );
    let stats = server.txn_stats();
    assert_eq!((stats.committed, stats.active), (0, 0));
}

#[test]
fn empty_commit_is_a_noop() {
    let (voc, tbox, abox, _) = fixture();
    let server = Server::new(voc, tbox, &abox, ServerConfig::default());
    let txn = server.begin();
    let generation = txn.commit().unwrap();
    assert_eq!(generation, 0, "empty commit returns the pinned generation");
    assert_eq!(server.generation(), 0, "no generation bump");
}

#[test]
fn first_committer_wins_on_overlapping_keys() {
    let (voc, tbox, abox, _) = fixture();
    let phd = voc.find_concept("PhDStudent").unwrap();
    let works = voc.find_role("worksWith").unwrap();
    let ioana = voc.find_individual("Ioana").unwrap();
    let damian = voc.find_individual("Damian").unwrap();
    let server = Server::new(voc, tbox, &abox, ServerConfig::default());

    // Overlap: both write the fact key PhDStudent(Ioana).
    let mut first = server.begin();
    let mut second = server.begin();
    first.insert_concept(phd, ioana);
    second.retract_concept(phd, ioana);
    first.commit().unwrap();
    match second.commit() {
        Err(ServerError::Conflict { committed_in }) => assert_eq!(committed_in, 1),
        other => panic!("expected Conflict, got {other:?}"),
    }
    assert_eq!(server.txn_stats().conflicts, 1);

    // Disjoint keys: both commit, in order.
    let mut third = server.begin();
    let mut fourth = server.begin();
    third.insert_role(works, damian, ioana);
    fourth.retract_concept(phd, damian);
    assert_eq!(third.commit().unwrap(), 2);
    assert_eq!(fourth.commit().unwrap(), 3);

    // A transaction begun *after* the first commit does not conflict
    // with it: only writes committed past the begin generation count.
    let mut fifth = server.begin();
    fifth.insert_concept(phd, ioana);
    assert_eq!(fifth.commit().unwrap(), 4);
}

#[test]
fn new_individuals_remap_to_final_ids_at_commit() {
    let (voc, tbox, abox, _) = fixture();
    let phd = voc.find_concept("PhDStudent").unwrap();
    let works = voc.find_role("worksWith").unwrap();
    let base = voc.num_individuals();
    let server = Server::new(voc, tbox, &abox, ServerConfig::default());

    // Two concurrent transactions introduce names; their provisional ids
    // alias (both allocate base+0) but commit remaps them apart.
    let mut a = server.begin();
    let mut b = server.begin();
    let alice = a.individual("Alice_New");
    let bob = b.individual("Bob_New");
    assert_eq!(alice.0 as usize, base, "provisional ids alias across txns");
    assert_eq!(bob.0 as usize, base);
    a.insert_concept(phd, alice);
    b.insert_role(works, bob, bob);
    a.commit().unwrap();
    b.commit().unwrap();

    let snap = server.snapshot();
    let final_alice = snap.vocabulary().find_individual("Alice_New").unwrap();
    let final_bob = snap.vocabulary().find_individual("Bob_New").unwrap();
    assert_ne!(final_alice, final_bob);
    assert!(snap.engine().probe_concept(phd, final_alice));
    assert!(snap.engine().probe_role(works, final_bob, final_bob));
    assert!(!snap.engine().probe_concept(phd, final_bob));
}

#[test]
fn concurrent_writers_commit_in_groups_and_lose_nothing() {
    let (voc, tbox, abox, _) = fixture();
    let phd = voc.find_concept("PhDStudent").unwrap();
    let dir = scratch("group-commit");
    let server =
        Arc::new(Server::create_durable(&dir, voc, tbox, &abox, ServerConfig::default()).unwrap());

    const WRITERS: usize = 8;
    let committed = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let server = Arc::clone(&server);
            let committed = Arc::clone(&committed);
            scope.spawn(move || {
                let mut txn = server.begin();
                let id = txn.individual(&format!("Writer_{w}"));
                txn.insert_concept(phd, id);
                txn.commit().unwrap();
                committed.fetch_add(1, Ordering::SeqCst);
            });
        }
    });
    assert_eq!(committed.load(Ordering::SeqCst), WRITERS as u64);

    let stats = server.txn_stats();
    assert_eq!(stats.committed, WRITERS as u64);
    assert_eq!(stats.conflicts, 0);
    assert!(
        stats.commit_groups >= 1 && stats.commit_groups <= WRITERS as u64,
        "every commit rode some group: {stats:?}"
    );
    assert_eq!(server.generation(), WRITERS as u64);

    let snap = server.snapshot();
    for w in 0..WRITERS {
        let id = snap
            .vocabulary()
            .find_individual(&format!("Writer_{w}"))
            .unwrap_or_else(|| panic!("Writer_{w} must be interned"));
        assert!(snap.engine().probe_concept(phd, id));
    }
    drop(server);

    // Recovery agrees: every committed transaction survives restart.
    let reopened = Server::open(&dir, ServerConfig::default()).unwrap();
    assert_eq!(reopened.generation(), WRITERS as u64);
    let snap = reopened.snapshot();
    for w in 0..WRITERS {
        assert!(snap
            .vocabulary()
            .find_individual(&format!("Writer_{w}"))
            .is_some());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pinned_snapshot_survives_commits_and_fuzzy_checkpoint() {
    let (voc, tbox, abox, q) = fixture();
    let phd = voc.find_concept("PhDStudent").unwrap();
    let works = voc.find_role("worksWith").unwrap();
    let ioana = voc.find_individual("Ioana").unwrap();
    let damian = voc.find_individual("Damian").unwrap();
    let dir = scratch("pinned-ckpt");
    let server = Server::create_durable(&dir, voc, tbox, &abox, ServerConfig::default()).unwrap();

    let mut reader = server.begin();
    let before = sorted_rows(reader.query(&q).unwrap());

    // Concurrent commits and a fuzzy checkpoint while `reader` is open.
    let mut w1 = server.begin();
    w1.insert_concept(phd, ioana);
    w1.commit().unwrap();
    server.checkpoint().unwrap();
    let mut w2 = server.begin();
    w2.retract_concept(phd, damian);
    w2.commit().unwrap();

    // The reader still answers from its pinned generation.
    assert_eq!(reader.begin_generation(), 0);
    assert_eq!(sorted_rows(reader.query(&q).unwrap()), before);
    // And a disjoint write from the old snapshot still commits.
    reader.insert_role(works, ioana, ioana);
    reader.commit().unwrap();

    drop(server);
    let reopened = Server::open(&dir, ServerConfig::default()).unwrap();
    assert_eq!(reopened.generation(), 3);
    let snap = reopened.snapshot();
    assert!(snap.engine().probe_concept(phd, ioana));
    assert!(!snap.engine().probe_concept(phd, damian));
    assert!(snap.engine().probe_role(works, ioana, ioana));
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// The acceptance differential: interleaved writers ≡ serial replay.
// ---------------------------------------------------------------------------

/// One buffered fact operation, individual-addressed *by name* so the
/// same script replays identically on a server with different interned
/// ids (new names get different final ids under different interleavings).
#[derive(Clone, Debug)]
enum Op {
    Concept(ConceptId, String, bool),
    Role(RoleId, String, String, bool),
}

fn apply_op(txn: &mut Txn<'_>, op: &Op) {
    match op {
        Op::Concept(c, name, present) => {
            let a = txn.individual(name);
            if *present {
                txn.insert_concept(*c, a);
            } else {
                txn.retract_concept(*c, a);
            }
        }
        Op::Role(r, a_name, b_name, present) => {
            let a = txn.individual(a_name);
            let b = txn.individual(b_name);
            if *present {
                txn.insert_role(*r, a, b);
            } else {
                txn.retract_role(*r, a, b);
            }
        }
    }
}

/// A writer's script: its buffered ops plus whether it tries to commit
/// (it may still lose first-committer-wins) or rolls back.
#[derive(Clone, Debug)]
struct Script {
    ops: Vec<Op>,
    commits: bool,
}

fn random_scripts(rng: &mut Rng, voc: &Vocabulary, writers: usize) -> Vec<Script> {
    let individuals: Vec<String> = (0..voc.num_individuals())
        .map(|i| voc.individual_name(IndividualId(i as u32)).to_string())
        .collect();
    (0..writers)
        .map(|w| {
            let mut ops = Vec::new();
            for k in 0..(1 + rng.below(5)) {
                // A fresh name with 25% probability; writers never share
                // fresh names, so name collisions only happen on base
                // individuals (where they are the point: conflicts).
                let pick = |rng: &mut Rng, salt: usize| {
                    if rng.chance(0.25) {
                        format!("w{w}_fresh_{salt}")
                    } else {
                        individuals[rng.below(individuals.len())].clone()
                    }
                };
                let present = rng.chance(0.7);
                if rng.chance(0.5) {
                    let c = ConceptId(rng.below(voc.num_concepts()) as u32);
                    let name = pick(rng, k);
                    ops.push(Op::Concept(c, name, present));
                } else {
                    let r = RoleId(rng.below(voc.num_roles()) as u32);
                    let a = pick(rng, k);
                    let b = pick(rng, k + 100);
                    ops.push(Op::Role(r, a, b, present));
                }
            }
            Script {
                ops,
                commits: rng.chance(0.8),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// N interleaved writers with mixed commits, rollbacks, and
    /// first-committer-wins losses — plus a fuzzy checkpoint somewhere
    /// mid-stream — leave the server exactly where serially replaying
    /// only the committed transactions, in commit order, leaves a fresh
    /// one: same vocabulary, same catalog statistics, same answers under
    /// every layout, and the same recovered on-disk state.
    #[test]
    fn interleaved_writers_equal_serial_replay(seed in 0u64..1_000_000) {
        for layout in [LayoutKind::Simple, LayoutKind::Triple, LayoutKind::Dph] {
            let mut rng = Rng::new(seed ^ (layout as u64).wrapping_mul(0x9e37_79b9));
            let shape = KbShape::default();
            let (mut voc, tbox) = random_tbox(&mut rng, &shape);
            let abox = random_abox(&mut rng, &mut voc, &shape);
            let config = ServerConfig { layout, compact_every: 0, ..ServerConfig::default() };

            let live_dir = scratch(&format!("prop-live-{seed}-{}", layout.name()));
            let serial_dir = scratch(&format!("prop-serial-{seed}-{}", layout.name()));
            let live = Server::create_durable(
                &live_dir, voc.clone(), tbox.clone(), &abox, config.clone(),
            ).unwrap();

            let writers = 2 + rng.below(3);
            let scripts = random_scripts(&mut rng, &voc, writers);

            // Interleave: open all writers up front, then repeatedly pick
            // one with work left and run its next action (op, or finish).
            // A fuzzy checkpoint fires at one random step.
            let mut txns: Vec<Option<Txn<'_>>> =
                (0..writers).map(|_| Some(live.begin())).collect();
            let mut cursor = vec![0usize; writers];
            let total_actions: usize =
                scripts.iter().map(|s| s.ops.len() + 1).sum();
            let ckpt_at = rng.below(total_actions + 1);
            let mut commit_order: Vec<usize> = Vec::new();
            for step in 0..total_actions {
                if step == ckpt_at {
                    live.checkpoint().unwrap();
                }
                // Pick a writer with actions remaining.
                let alive: Vec<usize> = (0..writers)
                    .filter(|&w| cursor[w] <= scripts[w].ops.len())
                    .collect();
                let w = alive[rng.below(alive.len())];
                if cursor[w] < scripts[w].ops.len() {
                    apply_op(txns[w].as_mut().unwrap(), &scripts[w].ops[cursor[w]]);
                } else {
                    let txn = txns[w].take().unwrap();
                    if scripts[w].commits {
                        match txn.commit() {
                            Ok(_) => commit_order.push(w),
                            Err(ServerError::Conflict { .. }) => {} // FCW loser
                            Err(other) => panic!("unexpected commit error: {other}"),
                        }
                    } else {
                        txn.rollback();
                    }
                }
                cursor[w] += 1;
            }
            if ckpt_at == total_actions {
                live.checkpoint().unwrap();
            }

            // Serial replay of exactly the committed transactions, in
            // commit order, each on a fresh snapshot (no concurrency, so
            // none can conflict).
            let serial = Server::create_durable(
                &serial_dir, voc.clone(), tbox.clone(), &abox, config.clone(),
            ).unwrap();
            for &w in &commit_order {
                let mut txn = serial.begin();
                for op in &scripts[w].ops {
                    apply_op(&mut txn, op);
                }
                txn.commit().unwrap();
            }

            // Server state: vocabulary, catalog stats, query answers.
            let live_snap = live.snapshot();
            let serial_snap = serial.snapshot();
            prop_assert_eq!(
                live_snap.generation(), commit_order.len() as u64,
                "one generation per committed transaction (layout {})", layout.name()
            );
            prop_assert_eq!(live_snap.vocabulary(), serial_snap.vocabulary());
            prop_assert_eq!(
                live_snap.engine().stats(), serial_snap.engine().stats(),
                "catalog stats must match serial replay (layout {})", layout.name()
            );
            for _ in 0..3 {
                let atoms = 1 + rng.below(3);
                let cq = random_connected_cq(&mut rng, &voc, atoms, 2);
                let a = sorted_rows(live.query(&cq).unwrap());
                let b = sorted_rows(serial.query(&cq).unwrap());
                prop_assert_eq!(a, b, "answers diverge (layout {})", layout.name());
            }

            // Durable state: both recover to the same KB, checkpoint or
            // not on the live side.
            drop(txns);
            drop(live);
            drop(serial);
            let live_kb = recover(&live_dir).unwrap();
            let serial_kb = recover(&serial_dir).unwrap();
            prop_assert_eq!(live_kb.generation, serial_kb.generation);
            prop_assert_eq!(&live_kb.voc, &serial_kb.voc);
            prop_assert_eq!(&live_kb.abox, &serial_kb.abox);
            std::fs::remove_dir_all(&live_dir).unwrap();
            std::fs::remove_dir_all(&serial_dir).unwrap();
        }
    }
}

/// Constraint staleness across the write paths: mined ABox completeness
/// constraints are cached per snapshot generation, so every route that
/// publishes a new generation — `apply_batch`, a committed transaction —
/// and the in-transaction overlay itself must re-mine rather than reuse
/// the pre-write constraint set. A stale set would keep pruning a union
/// arm whose predicate the write just populated, silently dropping rows.
mod stale_constraints {
    use super::*;
    // `proptest::prelude::Strategy` (a trait) shadows the enum upstream.
    use obda::core::Strategy;

    /// `Apprentice ⊑ Builder`, ABox `{Builder(b0)}`, `q(x) ← Builder(x)`.
    /// PerfectRef yields `Builder(x) ∨ Apprentice(x)`; while `Apprentice`
    /// is empty the constraint miner prunes the second arm, so the tests
    /// below revolve around inserting the first `Apprentice` fact.
    fn tiny() -> (
        Vocabulary,
        TBox,
        ABox,
        CQ,
        ConceptId,
        IndividualId,
        IndividualId,
    ) {
        let mut b = TBoxBuilder::new();
        b.sub("Apprentice", "Builder");
        let (mut voc, tbox) = b.finish();
        let appr = voc.find_concept("Apprentice").unwrap();
        let builder = voc.find_concept("Builder").unwrap();
        let b0 = voc.individual("b0");
        // Pre-interned so post-construction writes can reference it.
        let a0 = voc.individual("a0");
        let mut abox = ABox::new();
        abox.assert_concept(builder, b0);
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(builder, Term::Var(VarId(0)))],
        );
        (voc, tbox, abox, q, appr, a0, b0)
    }

    fn config() -> ServerConfig {
        ServerConfig {
            reform_strategy: Strategy::Ucq,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn apply_batch_refreshes_mined_constraints() {
        let (voc, tbox, abox, q, appr, a0, b0) = tiny();
        let server = Server::new(voc, tbox, &abox, config());

        // Cold query: the Apprentice arm is pruned as provably empty.
        assert_eq!(sorted_rows(server.query(&q).unwrap()), vec![vec![b0.0]]);
        let (empty, subsumed) = server.observe().pruned_arms_total();
        assert!(
            empty + subsumed >= 1,
            "the empty Apprentice arm must be pruned ({empty} empty, {subsumed} subsumed)"
        );

        // The pre-write constraint set is sound for the pre-write ABox
        // and must be recognizably stale for the post-write one.
        let stale = server.snapshot().constraints();
        assert!(stale.holds_on(&abox));
        let delta = AboxDelta::new().insert_concept(appr, a0);
        let mut mutated = abox.clone();
        mutated.apply(&delta);
        assert!(
            !stale.holds_on(&mutated),
            "pre-write constraints must not hold once Apprentice is populated"
        );

        // After the batch the pruned arm is live again: a0 is a certain
        // answer (Apprentice ⊑ Builder) and must come back.
        let generation = server.apply_batch(&delta).unwrap();
        assert_eq!(generation, 1);
        assert!(server.snapshot().constraints().holds_on(&mutated));
        assert_eq!(
            sorted_rows(server.query(&q).unwrap()),
            vec![vec![b0.0], vec![a0.0]],
            "a stale constraint set would keep pruning the Apprentice arm"
        );
    }

    #[test]
    fn committed_transaction_refreshes_mined_constraints() {
        let (voc, tbox, abox, q, appr, a0, b0) = tiny();
        let server = Server::new(voc.clone(), tbox.clone(), &abox, config());
        let mut off_config = config();
        off_config.use_constraints = false;
        let witness = Server::new(voc, tbox, &abox, off_config);

        assert_eq!(sorted_rows(server.query(&q).unwrap()), vec![vec![b0.0]]);

        let mut txn = server.begin();
        txn.insert_concept(appr, a0);
        // The overlay mines its own constraints over base + buffered
        // writes; a leaked base-generation set would prune the arm and
        // hide the transaction's own insert.
        assert_eq!(
            sorted_rows(txn.query(&q).unwrap()),
            vec![vec![b0.0], vec![a0.0]],
            "read-your-own-writes through the reformulated arm"
        );
        // Other sessions still see the pre-write pruned answer.
        assert_eq!(sorted_rows(server.query(&q).unwrap()), vec![vec![b0.0]]);

        txn.commit().unwrap();
        let mut wtxn = witness.begin();
        wtxn.insert_concept(appr, a0);
        wtxn.commit().unwrap();
        assert_eq!(
            sorted_rows(server.query(&q).unwrap()),
            sorted_rows(witness.query(&q).unwrap()),
            "constraints-on answers must match the constraints-off witness after commit"
        );
        assert_eq!(
            sorted_rows(server.query(&q).unwrap()),
            vec![vec![b0.0], vec![a0.0]]
        );
    }
}
