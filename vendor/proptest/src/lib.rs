//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the slice of proptest this workspace uses: the [`proptest!`]
//! macro over integer-range strategies, [`ProptestConfig::with_cases`],
//! and the `prop_assert*` macros. Cases are generated deterministically
//! from the test name, so failures reproduce across runs. There is no
//! shrinking: a failing case panics with the sampled arguments printed.
//!
//! The case count can be globally capped with the `PROPTEST_CASES`
//! environment variable (same knob as real proptest), which tier-1 CI can
//! use to bound runtime.

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Effective case count: the configured count, capped by `PROPTEST_CASES`
/// when that env var is set.
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
    {
        Some(cap) => configured.min(cap.max(1)),
        None => configured,
    }
}

/// Deterministic splitmix64 stream seeding each test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A per-case RNG derived from the test name and case index, so every
    /// run of the suite replays the same inputs.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A source of values for one macro argument. Only the strategies the
/// workspace uses are implemented (integer ranges).
pub trait Strategy {
    type Value: std::fmt::Debug;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The workhorse macro: expands each `fn name(arg in strategy, ...)` item
/// into a plain `#[test]` that replays `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let cases = $crate::resolve_cases(cfg.cases);
                for __case in 0..cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __case_desc =
                        format!(concat!("case #{}: ", $(stringify!($arg), " = {:?} "),+), __case, $(&$arg),+);
                    let __guard = $crate::CaseGuard::new(__case_desc);
                    { $body }
                    __guard.disarm();
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Prints the failing case's sampled arguments if the body panics.
pub struct CaseGuard {
    desc: Option<String>,
}

impl CaseGuard {
    pub fn new(desc: String) -> Self {
        CaseGuard { desc: Some(desc) }
    }

    pub fn disarm(mut self) {
        self.desc = None;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if let Some(desc) = &self.desc {
            eprintln!("proptest failure in {desc}");
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn samples_stay_in_range(x in 3u64..17, y in 1usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..5).contains(&y));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 1);
        assert_ne!(TestRng::for_case("t", 0).next_u64(), c.next_u64());
    }

    #[test]
    fn env_cap_applies() {
        // The test process may itself run under a PROPTEST_CASES cap
        // (CI sets one globally), so assert *behaviour* against the
        // ambient value rather than restating the implementation: the
        // cap may only lower the configured count (never raise it, never
        // to zero), and with no cap the configured count is identity.
        let resolved = resolve_cases(64);
        assert!(
            (1..=64).contains(&resolved),
            "cap may only lower, never raise or zero: {resolved}"
        );
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
        {
            Some(cap) => assert!(
                resolved <= cap.max(1),
                "resolved {resolved} exceeds the env cap {cap}"
            ),
            None => assert_eq!(resolved, 64, "no cap set: configured count is identity"),
        }
    }
}
