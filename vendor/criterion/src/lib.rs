//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the slice of the criterion API the workspace's nine bench
//! targets use: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, [`Bencher::iter`], and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is simple wall-clock sampling
//! (per-sample mean over an adaptively chosen iteration count) rather
//! than criterion's full statistical pipeline — good enough for relative
//! comparisons, and it keeps `cargo bench` runnable offline.

use std::time::{Duration, Instant};

/// Entry point handed to each registered bench function.
pub struct Criterion {
    /// Substring filter from the CLI (`cargo bench -- <filter>`).
    filter: Option<String>,
    default_sample_size: usize,
    matched: std::cell::Cell<usize>,
    reports: std::cell::RefCell<Vec<Report>>,
}

/// One finished measurement, retrievable via [`Criterion::reports`] —
/// a stub extension (real criterion writes `target/criterion/` instead)
/// so bench binaries can merge their numbers into tracked output files.
#[derive(Debug, Clone)]
pub struct Report {
    pub id: String,
    pub mean: Duration,
    pub min: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            default_sample_size: 20,
            matched: std::cell::Cell::new(0),
            reports: std::cell::RefCell::new(Vec::new()),
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        // A filter that matches nothing would otherwise look like a clean,
        // instant run.
        if let Some(filter) = &self.filter {
            if self.matched.get() == 0 {
                eprintln!("criterion stub: filter {filter:?} matched no benchmarks");
            }
        }
    }
}

impl Criterion {
    /// Parse the arguments cargo passes to a `harness = false` bench
    /// binary (`--bench`, plus an optional positional filter). Unknown
    /// flags are warned about and ignored — never silently folded into
    /// the filter — so future cargo versions don't break the run.
    pub fn configure_from_args(self) -> Self {
        self.configure_from(std::env::args().skip(1).collect())
    }

    fn configure_from(mut self, args: Vec<String>) -> Self {
        let mut i = 0;
        while i < args.len() {
            // Accept both `--flag value` and `--flag=value` forms.
            let (flag, joined) = match args[i].split_once('=') {
                Some((f, v)) if f.starts_with("--") => (f, Some(v.to_owned())),
                _ => (args[i].as_str(), None),
            };
            // The flag's operand: the joined value, else the next token.
            let mut take_value = |i: &mut usize| {
                joined.clone().or_else(|| {
                    *i += 1;
                    args.get(*i).cloned()
                })
            };
            match flag {
                "--bench" | "--test" | "--quiet" | "--verbose" | "--exact" | "--nocapture" => {}
                "--sample-size" => {
                    if let Some(n) = take_value(&mut i).and_then(|v| v.parse().ok()) {
                        self.default_sample_size = n;
                    }
                }
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time" => {
                    let _ = take_value(&mut i);
                }
                s if s.starts_with('-') => {
                    // Unknown flag: skip it, and treat a following
                    // non-flag token as its operand rather than a filter.
                    eprintln!("criterion stub: ignoring unknown flag {s}");
                    if joined.is_none() && args.get(i + 1).is_some_and(|a| !a.starts_with('-')) {
                        i += 1;
                    }
                }
                filter => self.filter = Some(filter.to_owned()),
            }
            i += 1;
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            group: name,
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(id.into(), sample_size, f);
        self
    }

    fn run_one<F>(&self, id: String, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        self.matched.set(self.matched.get() + 1);
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size,
        };
        f(&mut bencher);
        bencher.report(&id);
        if let Some(report) = bencher.summarize(&id) {
            self.reports.borrow_mut().push(report);
        }
    }

    /// All measurements recorded so far, in execution order.
    pub fn reports(&self) -> Vec<Report> {
        self.reports.borrow().clone()
    }
}

/// Grouped benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.group, id.into());
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(id, sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Timing harness passed to each `bench_function` closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine`: one warm-up call sizes the per-sample iteration
    /// count so each sample takes roughly 10ms, then `sample_size`
    /// samples are recorded.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let warmup = Instant::now();
        std::hint::black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample as u32);
        }
    }

    fn summarize(&self, id: &str) -> Option<Report> {
        if self.samples.is_empty() {
            return None;
        }
        let total: Duration = self.samples.iter().sum();
        Some(Report {
            id: id.to_owned(),
            mean: total / self.samples.len() as u32,
            min: self.samples.iter().min().copied().unwrap_or_default(),
        })
    }

    fn report(&self, id: &str) {
        let Some(r) = self.summarize(id) else {
            println!("  {id:<40} (no measurement)");
            return;
        };
        println!(
            "  {id:<40} mean {:>12} min {:>12} ({} samples)",
            fmt_duration(r.mean),
            fmt_duration(r.min),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Mirror of criterion's `black_box`, for benches importing it from here.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("accumulate", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 0);
        let reports = c.reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].id, "g/accumulate");
        assert!(reports[0].min <= reports[0].mean);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion::default();
        c.filter = Some("nomatch".into());
        c.default_sample_size = 3;
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        assert_eq!(c.matched.get(), 0);
    }

    #[test]
    fn arg_parsing_never_mistakes_operands_for_filters() {
        let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
        let c = Criterion::default().configure_from(to_args(&["--bench", "--warm-up-time", "3"]));
        assert_eq!(c.filter, None);
        let c = Criterion::default().configure_from(to_args(&["--sample-size=7"]));
        assert_eq!(c.default_sample_size, 7);
        let c = Criterion::default().configure_from(to_args(&["--unknown-flag", "3", "gdl"]));
        assert_eq!(c.filter.as_deref(), Some("gdl"));
        let mut c = Criterion::default().configure_from(to_args(&["--bench", "gdl"]));
        assert_eq!(c.filter.as_deref(), Some("gdl"));
        c.matched.set(1); // silence the drop-time no-match warning
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
