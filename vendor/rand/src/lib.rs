//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the (small) slice of the rand 0.9 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `random_bool` / `random_range`. The generator is
//! splitmix64 — deterministic, seedable, and statistically fine for data
//! generation, though NOT cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 bits of mantissa give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniform sample from `range`. Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy {
    /// `low + offset` where `offset < span`; `span == 0` encodes the full
    /// 2⁶⁴ span (only reachable from 64-bit inclusive ranges).
    fn sample_span(low: Self, span: u64, rng: &mut dyn RngCore) -> Self;
    fn to_word(self) -> u64;
}

/// Range shapes accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        let span = self.end.to_word().wrapping_sub(self.start.to_word());
        T::sample_span(self.start, span, &mut as_dyn(rng))
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        // Computed in u64 so `hi = T::MAX` cannot overflow; a full-width
        // 64-bit range wraps the span to 0, the full-span encoding.
        let span = hi.to_word().wrapping_sub(lo.to_word()).wrapping_add(1);
        T::sample_span(lo, span, &mut as_dyn(rng))
    }
}

/// Helper adapting a generic RngCore to the dyn-based SampleUniform entry.
struct DynShim<'a, R: RngCore + ?Sized>(&'a mut R);

impl<R: RngCore + ?Sized> RngCore for DynShim<'_, R> {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

fn as_dyn<R: RngCore + ?Sized>(rng: &mut R) -> DynShim<'_, R> {
    DynShim(rng)
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_span(low: Self, span: u64, rng: &mut dyn RngCore) -> Self {
                if span == 0 {
                    // Full 2⁶⁴ span: every word is a valid offset.
                    return low.wrapping_add(rng.next_u64() as $t);
                }
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the small spans used here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
            fn to_word(self) -> u64 {
                self as u64
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng as _, SeedableRng as _};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(8..14);
            assert!((8..14).contains(&v));
            let u = rng.random_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn inclusive_ranges_reach_type_max() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            let _: u8 = rng.random_range(0u8..=u8::MAX);
            let _: u64 = rng.random_range(0u64..=u64::MAX);
            let v = rng.random_range(250u8..=u8::MAX);
            assert!(v >= 250);
            let w = rng.random_range(i64::MIN..=i64::MAX);
            let _ = w;
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
